package measure

import (
	"time"

	"gptpfta/internal/sim"
)

// Warm-start snapshot support (sim.Snapshotter). The collector restores
// every derived and windowed quantity from the snapshot — open collect
// windows, the sample series, and the per-path latency extrema — so a fork
// never inherits measurement state accumulated after the snapshot point.
// Reply payloads are immutable once sent, so window snapshots share the
// *Reply pointers and only copy the slices holding them.

type collectorSnapshot struct {
	ticker  *sim.Ticker
	seq     uint64
	windows []pendingWindow
	samples []Sample
	pathMin map[string]time.Duration
	pathMax map[string]time.Duration
}

func copyWindows(src []pendingWindow) []pendingWindow {
	out := make([]pendingWindow, len(src))
	for i := range src {
		out[i] = pendingWindow{seq: src[i].seq, open: src[i].open}
		if len(src[i].replies) > 0 {
			out[i].replies = append([]*Reply(nil), src[i].replies...)
		}
	}
	return out
}

func copyExtrema(src map[string]time.Duration) map[string]time.Duration {
	out := make(map[string]time.Duration, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// Snapshot implements sim.Snapshotter.
func (c *Collector) Snapshot() any {
	return &collectorSnapshot{
		ticker:  c.ticker,
		seq:     c.seq,
		windows: copyWindows(c.windows),
		samples: append([]Sample(nil), c.samples...),
		pathMin: copyExtrema(c.pathMin),
		pathMax: copyExtrema(c.pathMax),
	}
}

// Restore implements sim.Snapshotter. The samples slice is rebuilt on a
// fresh backing array every time: Samples() hands out views of the internal
// buffer, and results collected from an earlier fork must not be overwritten
// by this one.
func (c *Collector) Restore(snap any) {
	sn := snap.(*collectorSnapshot)
	c.ticker = sn.ticker
	c.seq = sn.seq
	c.windows = copyWindows(sn.windows)
	c.times = c.times[:0]
	c.samples = append([]Sample(nil), sn.samples...)
	c.pathMin = copyExtrema(sn.pathMin)
	c.pathMax = copyExtrema(sn.pathMax)
}

type latencyTrackerSnapshot struct {
	paths map[string]pathExtrema
}

// Snapshot implements sim.Snapshotter. Preregistered-but-unseen entries are
// captured too, so a fork keeps the race-free fast path for them.
func (lt *LatencyTracker) Snapshot() any {
	sn := &latencyTrackerSnapshot{paths: make(map[string]pathExtrema, len(lt.paths)+len(lt.overflow))}
	for k, p := range lt.paths {
		sn.paths[k] = *p
	}
	for k, p := range lt.overflow {
		sn.paths[k] = *p
	}
	return sn
}

// Restore implements sim.Snapshotter. Keys that are preregistered on the
// live tracker restore in place; anything else lands back in the overflow
// map.
func (lt *LatencyTracker) Restore(snap any) {
	sn := snap.(*latencyTrackerSnapshot)
	for _, p := range lt.paths {
		*p = pathExtrema{}
	}
	lt.overflow = make(map[string]*pathExtrema)
	for k, v := range sn.paths {
		if p, ok := lt.paths[k]; ok {
			*p = v
			continue
		}
		pv := v
		lt.overflow[k] = &pv
	}
}

type agentSnapshot struct {
	replies uint64
}

// Snapshot implements sim.Snapshotter.
func (a *Agent) Snapshot() any {
	return &agentSnapshot{replies: a.replies}
}

// Restore implements sim.Snapshotter.
func (a *Agent) Restore(snap any) {
	a.replies = snap.(*agentSnapshot).replies
}
