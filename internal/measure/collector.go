package measure

import (
	"errors"
	"math"
	"time"

	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// Sample is one per-second precision measurement.
type Sample struct {
	Seq uint64
	// AtSec is the simulation time of the probe, in seconds.
	AtSec float64
	// PiStarNS is Π*_s per eq. 3.1, nanoseconds.
	PiStarNS float64
	// Replies is the number of receivers that contributed.
	Replies int
}

// CollectorConfig parameterises the measurement VM.
type CollectorConfig struct {
	// Interval between probes; the paper measures once per second.
	Interval time.Duration
	// CollectWindow is how long after a probe the replies are gathered.
	CollectWindow time.Duration
	// Exclude lists VM names omitted from Π* (the paper omits the VM
	// co-located with the measurement VM, c_m1, to keep paths symmetric).
	Exclude []string
	// MinReplies below which a probe interval yields no sample (e.g.
	// during simultaneous reboots).
	MinReplies int
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.CollectWindow <= 0 {
		c.CollectWindow = 500 * time.Millisecond
	}
	if c.MinReplies <= 0 {
		c.MinReplies = 2
	}
	return c
}

// pendingWindow is one open probe interval awaiting replies. Windows are
// recycled: a closed window keeps its reply slice's capacity for the next
// probe, so steady-state collection stops allocating.
type pendingWindow struct {
	seq     uint64
	open    bool
	replies []*Reply
}

// Collector is the measurement VM's probe driver and Π* computer.
type Collector struct {
	cfg   CollectorConfig
	sched *sim.Scheduler
	nic   *netsim.NIC
	name  string

	exclude map[string]bool
	ticker  *sim.Ticker
	seq     uint64
	// windows holds the open collect windows plus recycled closed ones.
	// At most ceil(CollectWindow/Interval)+1 windows are ever open, so a
	// linear scan beats a map and drops the per-probe map churn.
	windows []pendingWindow
	// times is the reply-timestamp scratch buffer reused across finalize
	// calls.
	times []float64

	samples []Sample
	// per-path latency extrema for γ (eq. 3.2), keyed by replying VM.
	pathMin map[string]time.Duration
	pathMax map[string]time.Duration
}

// NewCollector creates the collector on the measurement VM's NIC.
func NewCollector(name string, sched *sim.Scheduler, nic *netsim.NIC, cfg CollectorConfig) *Collector {
	cfg = cfg.withDefaults()
	ex := make(map[string]bool, len(cfg.Exclude)+1)
	for _, e := range cfg.Exclude {
		ex[e] = true
	}
	ex[name] = true // the sender never measures itself
	return &Collector{
		cfg:     cfg,
		sched:   sched,
		nic:     nic,
		name:    name,
		exclude: ex,
		pathMin: make(map[string]time.Duration),
		pathMax: make(map[string]time.Duration),
	}
}

// Start begins probing.
func (c *Collector) Start() error {
	if c.ticker != nil {
		return errors.New("measure: collector already started")
	}
	t, err := c.sched.Every(c.sched.Now().Add(c.cfg.Interval), c.cfg.Interval, c.probe)
	if err != nil {
		return err
	}
	c.ticker = t
	return nil
}

// Stop halts probing.
func (c *Collector) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

// window returns the open window for seq, or nil if it already closed.
func (c *Collector) window(seq uint64) *pendingWindow {
	for i := range c.windows {
		if c.windows[i].open && c.windows[i].seq == seq {
			return &c.windows[i]
		}
	}
	return nil
}

// openWindow claims a recycled closed window or grows the slice.
func (c *Collector) openWindow(seq uint64) {
	for i := range c.windows {
		if !c.windows[i].open {
			c.windows[i].seq = seq
			c.windows[i].open = true
			return
		}
	}
	c.windows = append(c.windows, pendingWindow{seq: seq, open: true})
}

// closeWindow recycles a window, dropping its reply references promptly so
// they do not linger until the next probe with the same slot.
func (c *Collector) closeWindow(w *pendingWindow) {
	for i := range w.replies {
		w.replies[i] = nil
	}
	w.replies = w.replies[:0]
	w.open = false
}

// Handle consumes measurement replies; install it alongside the Agent on
// the measurement VM's frame demultiplexer.
func (c *Collector) Handle(f *netsim.Frame, _ float64) {
	r, ok := f.Payload.(*Reply)
	if !ok {
		return
	}
	w := c.window(r.Seq)
	if w == nil {
		return // reply after the collect window closed
	}
	w.replies = append(w.replies, r)
}

func (c *Collector) probe() {
	c.seq++
	seq := c.seq
	c.openWindow(seq)
	f := netsim.GetFrame()
	f.Src = netsim.Address("nic/" + c.name)
	f.Dst = MulticastAddr
	f.Priority = netsim.PriorityMeasure
	f.Payload = &Probe{Seq: seq, Origin: netsim.Address("nic/" + c.name)}
	atSec := float64(c.sched.Now()) / 1e9
	if _, err := c.nic.Send(f); err != nil {
		c.closeWindow(c.window(seq))
		return
	}
	c.sched.After(c.cfg.CollectWindow, func() { c.finalize(seq, atSec) })
}

func (c *Collector) finalize(seq uint64, atSec float64) {
	w := c.window(seq)
	if w == nil {
		return
	}
	replies := w.replies

	times := c.times[:0]
	for _, r := range replies {
		if c.exclude[r.VM] || !r.Valid {
			continue
		}
		times = append(times, r.SyncTimeNS)
		if cur, ok := c.pathMin[r.VM]; !ok || r.PathLatency < cur {
			c.pathMin[r.VM] = r.PathLatency
		}
		if cur, ok := c.pathMax[r.VM]; !ok || r.PathLatency > cur {
			c.pathMax[r.VM] = r.PathLatency
		}
	}
	c.closeWindow(w)
	c.times = times
	if len(times) < c.cfg.MinReplies {
		return
	}
	var worst float64
	for i := range times {
		for j := i + 1; j < len(times); j++ {
			if d := math.Abs(times[i] - times[j]); d > worst {
				worst = d
			}
		}
	}
	c.samples = append(c.samples, Sample{Seq: seq, AtSec: atSec, PiStarNS: worst, Replies: len(times)})
}

// Samples returns the per-second precision series as a read-only view of
// the collector's internal buffer. Callers must not mutate or append to the
// returned slice; take a copy if samples must outlive further collection.
func (c *Collector) Samples() []Sample {
	return c.samples
}

// Gamma computes the measurement error per eq. 3.2 over the measurement
// paths observed so far: max per-path maximum latency minus min per-path
// minimum latency.
func (c *Collector) Gamma() time.Duration {
	var haveAny bool
	var maxMax, minMin time.Duration
	for vm, lo := range c.pathMin {
		hi := c.pathMax[vm]
		if !haveAny {
			minMin, maxMax = lo, hi
			haveAny = true
			continue
		}
		if lo < minMin {
			minMin = lo
		}
		if hi > maxMax {
			maxMax = hi
		}
	}
	if !haveAny {
		return 0
	}
	return maxMax - minMin
}

// PathExtrema reports the per-VM measurement-path latency extrema.
func (c *Collector) PathExtrema() (min, max map[string]time.Duration) {
	min = make(map[string]time.Duration, len(c.pathMin))
	max = make(map[string]time.Duration, len(c.pathMax))
	for k, v := range c.pathMin {
		min[k] = v
	}
	for k, v := range c.pathMax {
		max[k] = v
	}
	return min, max
}
