package measure

import (
	"strings"
	"testing"
	"time"
)

func TestSamplesCSVRoundTrip(t *testing.T) {
	in := []Sample{
		{Seq: 1, AtSec: 1.5, PiStarNS: 322.4, Replies: 6},
		{Seq: 2, AtSec: 2.5, PiStarNS: 10080, Replies: 5},
	}
	var b strings.Builder
	if err := WriteSamplesCSV(&b, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := ParseSamplesCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost rows: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Seq != in[i].Seq || out[i].Replies != in[i].Replies {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
		if out[i].PiStarNS != in[i].PiStarNS {
			t.Fatalf("row %d precision mismatch: %v vs %v", i, out[i].PiStarNS, in[i].PiStarNS)
		}
	}
}

func TestParseSamplesCSVErrors(t *testing.T) {
	if _, err := ParseSamplesCSV(strings.NewReader("seq,at_sec,pi_star_ns,replies\nx,1,2,3\n")); err == nil {
		t.Fatal("bad seq accepted")
	}
	if _, err := ParseSamplesCSV(strings.NewReader("seq,at_sec,pi_star_ns,replies\n1,x,2,3\n")); err == nil {
		t.Fatal("bad at_sec accepted")
	}
	out, err := ParseSamplesCSV(strings.NewReader(""))
	if err != nil || out != nil {
		t.Fatalf("empty input: %v/%v", out, err)
	}
}

func TestWriteWindowsCSV(t *testing.T) {
	var b strings.Builder
	err := WriteWindowsCSV(&b, []Window{{StartSec: 0, MinNS: 1, AvgNS: 2, MaxNS: 3, Count: 4}})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(b.String(), "start_sec") || !strings.Contains(b.String(), "4") {
		t.Fatalf("output: %s", b.String())
	}
}

func TestWriteHistogramCSV(t *testing.T) {
	var b strings.Builder
	h := Histogram{BucketWidthNS: 50, Counts: []int{3, 1}, Overflow: 2}
	if err := WriteHistogramCSV(&b, h); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "bucket_lo_ns") || !strings.Contains(out, "overflow,2") {
		t.Fatalf("output: %s", out)
	}
}

func TestWritePathExtremaCSV(t *testing.T) {
	var b strings.Builder
	min := map[string]time.Duration{"b": 2 * time.Microsecond, "a": time.Microsecond}
	max := map[string]time.Duration{"b": 3 * time.Microsecond, "a": 2 * time.Microsecond}
	if err := WritePathExtremaCSV(&b, min, max); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	// Sorted by path key.
	if !strings.Contains(out, "a,1000,2000") || strings.Index(out, "a,") > strings.Index(out, "b,") {
		t.Fatalf("output: %s", out)
	}
}
