package obs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, one gauge and one histogram
// from many goroutines; run under -race via `make verify`. Totals must be
// exact — atomic updates may interleave but never lose increments.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 10000

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			// Resolve handles concurrently too: registration must be
			// race-free and idempotent.
			c := reg.Counter("runs_total")
			g := reg.Gauge("last_value", L("worker", "shared"))
			h := reg.Histogram("wall_ns", []float64{10, 100, 1000})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(w))
				h.Observe(float64(i % 2000))
			}
		}()
	}
	wg.Wait()

	if got := reg.Counter("runs_total").Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*perWorker)
	}
	h := reg.Histogram("wall_ns", []float64{10, 100, 1000})
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram lost observations: got %d want %d", got, workers*perWorker)
	}
	snap := h.snapshot()
	var bucketSum uint64
	for _, c := range snap.Counts {
		bucketSum += c
	}
	if bucketSum != snap.Count {
		t.Fatalf("bucket counts (%d) disagree with total (%d)", bucketSum, snap.Count)
	}
	if snap.Min != 0 || snap.Max != 1999 {
		t.Fatalf("min/max wrong: got [%v, %v] want [0, 1999]", snap.Min, snap.Max)
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics: a value equal to a
// bucket's upper bound lands in that bucket, the next representable value
// above it in the following one, and values past the last bound overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("b", []float64{0, 10, 100})

	h.Observe(math.Inf(-1)) // far below: first bucket
	h.Observe(-5)           // <= 0
	h.Observe(0)            // boundary: still first bucket
	h.Observe(math.Nextafter(0, 1))
	h.Observe(10) // boundary: second bucket
	h.Observe(math.Nextafter(10, 11))
	h.Observe(100)           // boundary: third bucket
	h.Observe(100.000000001) // just past: overflow
	h.Observe(math.MaxFloat64)

	want := []uint64{3, 2, 2, 2}
	snap := h.snapshot()
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("bucket counts: got %v want %v", snap.Counts, want)
	}
	if snap.Count != 9 {
		t.Fatalf("count: got %d want 9", snap.Count)
	}
	if snap.Min != math.Inf(-1) || snap.Max != math.MaxFloat64 {
		t.Fatalf("min/max: got [%v, %v]", snap.Min, snap.Max)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("empty", []float64{1})
	snap := h.snapshot()
	if snap.Count != 0 || snap.Sum != 0 || snap.Min != 0 || snap.Max != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", snap)
	}
	if snap.Mean() != 0 {
		t.Fatalf("empty mean: got %v", snap.Mean())
	}
}

// TestNilSafety: a nil registry and nil handles must be inert, so components
// can instrument unconditionally.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(1)
	reg.Histogram("h", []float64{1}).Observe(2)
	reg.GaugeFunc("f", func() float64 { return 1 })
	if got := reg.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot: got %v", got)
	}
	if reg.Counter("c").Value() != 0 || reg.Gauge("g").Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

// TestRegistrationIdempotent: the same (name, labels) resolves to the same
// handle regardless of label order; different label values are distinct.
func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x", L("vm", "c11"), L("domain", "1"))
	b := reg.Counter("x", L("domain", "1"), L("vm", "c11"))
	if a != b {
		t.Fatal("label order split one series into two handles")
	}
	c := reg.Counter("x", L("vm", "c11"), L("domain", "2"))
	if a == c {
		t.Fatal("distinct label values collapsed into one series")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Fatalf("handle aliasing wrong: b=%d c=%d", b.Value(), c.Value())
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("dup")
}

// TestSnapshotSortedAndStable: Snapshot order is by name then labels,
// independent of registration order, so exports diff cleanly.
func TestSnapshotSortedAndStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz").Inc()
	reg.Counter("aa", L("vm", "c21")).Add(2)
	reg.Counter("aa", L("vm", "c11")).Add(1)
	reg.GaugeFunc("mm", func() float64 { return 42 })

	snap := reg.Snapshot()
	keys := make([]string, len(snap))
	for i, m := range snap {
		keys[i] = m.Key()
	}
	want := []string{"aa{vm=c11}", "aa{vm=c21}", "mm", "zz"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("snapshot order: got %v want %v", keys, want)
	}
	if snap[2].Value != 42 {
		t.Fatalf("gauge func not sampled: %+v", snap[2])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("frames", L("node", "sw1")).Add(7)
	reg.Histogram("offset_ns", []float64{-10, 0, 10}, L("domain", "1")).Observe(-3)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, "fig3a", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Run != "fig3a" {
			t.Fatalf("run tag lost: %+v", r)
		}
	}
	if recs[0].Name != "frames" || recs[0].Value != 7 {
		t.Fatalf("counter record wrong: %+v", recs[0])
	}
	h := recs[1].Histogram
	if h == nil || h.Count != 1 || h.Counts[1] != 1 || h.Min != -3 {
		t.Fatalf("histogram record wrong: %+v", h)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"run":"x"}` + "\n")); err == nil {
		t.Fatal("nameless metric accepted")
	}
	recs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank lines: recs=%v err=%v", recs, err)
	}
}

func TestAddLabel(t *testing.T) {
	ms := []Metric{{Name: "a", Type: "counter", Value: 1, Labels: map[string]string{"vm": "c11"}}}
	out := AddLabel(ms, "variant", "ours")
	if out[0].Labels["variant"] != "ours" || out[0].Labels["vm"] != "c11" {
		t.Fatalf("labels wrong: %v", out[0].Labels)
	}
	if _, leaked := ms[0].Labels["variant"]; leaked {
		t.Fatal("AddLabel mutated its input")
	}
}
