package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Record is one JSONL line: a metric tagged with the run (experiment or
// campaign section) it was snapshotted from.
type Record struct {
	Run string `json:"run,omitempty"`
	Metric
}

// WriteJSONL appends one line per metric to w, each tagged with run. The
// metrics keep their Snapshot order, so repeated exports of the same run are
// byte-identical.
func WriteJSONL(w io.Writer, run string, metrics []Metric) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, m := range metrics {
		if err := enc.Encode(Record{Run: run, Metric: m}); err != nil {
			return fmt.Errorf("obs: encode metric %s: %w", m.Name, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a metrics snapshot file written by WriteJSONL. Blank
// lines are ignored; any other malformed line is an error.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if rec.Name == "" {
			return nil, fmt.Errorf("obs: line %d: metric without a name", line)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
