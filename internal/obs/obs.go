// Package obs is the repository's unified observability layer: a
// low-allocation metrics registry shared by the simulation substrates (event
// kernel, network, gPTP/FTA, servo, hypervisor) and the experiment tooling
// (runner, CLIs). Handles — Counter, Gauge, Histogram — are resolved once at
// registration, including their full label set; every subsequent update is a
// plain atomic operation with no map lookup, no label formatting and no
// allocation, so instrumentation is safe to leave enabled on the hot paths
// the benchmarks gate on.
//
// Each core.System owns its own Registry, so the runner's parallel campaigns
// never mix metrics between concurrent simulations; the registry itself is
// nevertheless safe for concurrent use (the runner's pool updates its own
// campaign metrics from several workers).
//
// A nil *Registry and nil handles are valid and inert: components instrument
// themselves unconditionally and callers that do not care simply pass nil.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the series types held by a registry.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing series handle. All methods are
// nil-safe no-ops so instrumented code never branches on "metrics enabled".
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value series handle.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution handle. An observation lands in
// the first bucket whose upper bound is >= the value ("le" semantics); values
// beyond the last bound land in an implicit overflow bucket. Counts are
// per-bucket (not cumulative). Sum, min and max are tracked exactly.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket

	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // +Inf until first observation
	maxBits atomic.Uint64 // -Inf until first observation
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.sumBits.Store(math.Float64bits(0))
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search over the (small, sorted) bounds; allocation-free.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot renders the histogram's current state.
func (h *Histogram) snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		UpperBounds: append([]float64(nil), h.bounds...),
		Counts:      make([]uint64, len(h.counts)),
		Count:       h.count.Load(),
		Sum:         math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	return s
}

// series is one registered metric.
type series struct {
	name   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds a set of metric series. The zero value is not usable;
// create one with NewRegistry. A nil *Registry is inert: registration
// returns nil handles and Snapshot returns nothing.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	series []*series // registration order; Snapshot sorts a copy
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// seriesKey canonicalises name+labels. Labels are sorted by key so the
// registration order of labels never splits a series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register resolves-or-creates the series for (name, labels). It panics on a
// kind conflict: two components registering the same series as different
// types is a programming error, not a runtime condition.
func (r *Registry) register(name string, kind metricKind, labels []Label) *series {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: series %q re-registered as %s (was %s)", key, kind, s.kind))
		}
		return s
	}
	s := &series{name: name, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	}
	r.byKey[key] = s
	r.series = append(r.series, s)
	return s
}

// Counter registers (or resolves) a counter series and returns its handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, kindCounter, labels).counter
}

// Gauge registers (or resolves) a gauge series and returns its handle.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, kindGauge, labels).gauge
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// snapshot time — zero hot-path cost for components that already maintain
// their own counters (the event kernel, bridges, links). fn must be safe to
// call whenever Snapshot is called; for per-simulation registries that is
// after the run completes.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.register(name, kindGaugeFunc, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram registers (or resolves) a fixed-bucket histogram. bounds must be
// sorted ascending; an observation v lands in the first bucket with
// v <= bound, or the overflow bucket past the last bound. Re-registration
// returns the existing handle; the bounds of the first registration win.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, kindHistogram, labels)
	r.mu.Lock()
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	h := s.hist
	r.mu.Unlock()
	return h
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	// UpperBounds are the bucket upper bounds ("le" semantics).
	UpperBounds []float64 `json:"upper_bounds"`
	// Counts has len(UpperBounds)+1 entries; the last is the overflow
	// bucket. Counts are per-bucket, not cumulative.
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
	Min    float64  `json:"min,omitempty"`
	Max    float64  `json:"max,omitempty"`
}

// Mean reports the arithmetic mean of all observations, or 0 when empty.
func (s *HistogramSnapshot) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Metric is one series' state at snapshot time.
type Metric struct {
	Name      string             `json:"name"`
	Type      string             `json:"type"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     float64            `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Key canonicalises the metric's identity (name plus sorted labels) for
// cross-snapshot matching (cmd/benchdiff).
func (m Metric) Key() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(m.Name)
	for _, k := range keys {
		b.WriteByte('{')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m.Labels[k])
		b.WriteByte('}')
	}
	return b.String()
}

// Snapshot renders every series, sorted by name then labels, so snapshots of
// the same run are byte-stable.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	series := append([]*series(nil), r.series...)
	r.mu.Unlock()

	out := make([]Metric, 0, len(series))
	for _, s := range series {
		m := Metric{Name: s.name, Type: s.kind.String()}
		if len(s.labels) > 0 {
			m.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch s.kind {
		case kindCounter:
			m.Value = float64(s.counter.Value())
		case kindGauge:
			m.Value = s.gauge.Value()
		case kindGaugeFunc:
			if s.fn != nil {
				m.Value = s.fn()
			}
		case kindHistogram:
			m.Histogram = s.hist.snapshot()
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// AddLabel returns a copy of ms with one more label on every metric — used
// when merging snapshots from several systems into one result (e.g. the
// ablations' ours-vs-variant pairs).
func AddLabel(ms []Metric, key, value string) []Metric {
	out := make([]Metric, len(ms))
	for i, m := range ms {
		labels := make(map[string]string, len(m.Labels)+1)
		for k, v := range m.Labels {
			labels[k] = v
		}
		labels[key] = value
		m.Labels = labels
		out[i] = m
	}
	return out
}
