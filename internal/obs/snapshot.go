package obs

import "math"

// Warm-start state capture. Distinct from Snapshot(), which renders the
// registry for reporting: StateSnapshot/RestoreState rewind the raw series
// values so a forked simulation's metrics match a cold run bit for bit.
//
// The registry is append-only, so series are captured positionally. A series
// registered after the snapshot (e.g. chaos counters created while a fork
// ran) is reset to zero on restore rather than dropped — handles stay valid
// and the next fork re-registers onto the same zeroed series, exactly what a
// cold run starting from scratch would observe.

type histogramState struct {
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

type seriesState struct {
	counter uint64
	gauge   uint64 // float64 bits
	hist    *histogramState
}

// RegistryState is an opaque value snapshot of every series in a Registry.
type RegistryState struct {
	states []seriesState
}

func (h *Histogram) state() *histogramState {
	st := &histogramState{
		counts: make([]uint64, len(h.counts)),
		count:  h.count.Load(),
		sum:    math.Float64frombits(h.sumBits.Load()),
		min:    math.Float64frombits(h.minBits.Load()),
		max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.counts {
		st.counts[i] = h.counts[i].Load()
	}
	return st
}

func (h *Histogram) restoreState(st *histogramState) {
	for i := range h.counts {
		h.counts[i].Store(st.counts[i])
	}
	h.count.Store(st.count)
	h.sumBits.Store(math.Float64bits(st.sum))
	h.minBits.Store(math.Float64bits(st.min))
	h.maxBits.Store(math.Float64bits(st.max))
}

func (h *Histogram) zero() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(math.Float64bits(0))
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
}

// StateSnapshot captures the current value of every registered series.
func (r *Registry) StateSnapshot() *RegistryState {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	series := append([]*series(nil), r.series...)
	r.mu.Unlock()

	st := &RegistryState{states: make([]seriesState, len(series))}
	for i, s := range series {
		switch s.kind {
		case kindCounter:
			st.states[i].counter = s.counter.v.Load()
		case kindGauge:
			st.states[i].gauge = s.gauge.bits.Load()
		case kindHistogram:
			st.states[i].hist = s.hist.state()
		}
		// kindGaugeFunc carries no stored state: fn reads component state
		// that the components' own snapshots restore.
	}
	return st
}

// RestoreState rewinds every series captured by StateSnapshot and zeroes any
// series registered since.
func (r *Registry) RestoreState(st *RegistryState) {
	if r == nil || st == nil {
		return
	}
	r.mu.Lock()
	series := append([]*series(nil), r.series...)
	r.mu.Unlock()

	for i, s := range series {
		if i < len(st.states) {
			switch s.kind {
			case kindCounter:
				s.counter.v.Store(st.states[i].counter)
			case kindGauge:
				s.gauge.bits.Store(st.states[i].gauge)
			case kindHistogram:
				s.hist.restoreState(st.states[i].hist)
			}
			continue
		}
		switch s.kind {
		case kindCounter:
			s.counter.v.Store(0)
		case kindGauge:
			s.gauge.bits.Store(0)
		case kindHistogram:
			s.hist.zero()
		}
	}
}
