package runner

import (
	"context"
	"errors"
	"sync"
	"testing"

	"gptpfta/internal/obs"
)

// stubCache is a minimal SnapshotCache that records the call sequence.
type stubCache struct {
	mu       sync.Mutex
	store    map[string]any
	acquires int
	computes int
	released bool
}

func newStubCache() *stubCache { return &stubCache{store: map[string]any{}} }

func (c *stubCache) Acquire(ctx context.Context, hash string, compute func(context.Context) (any, error)) (any, bool, func(), error) {
	c.mu.Lock()
	c.acquires++
	snap, ok := c.store[hash]
	c.mu.Unlock()
	release := func() {
		c.mu.Lock()
		c.released = true
		c.mu.Unlock()
	}
	if ok {
		return snap, true, release, nil
	}
	c.mu.Lock()
	c.computes++
	c.mu.Unlock()
	snap, err := compute(ctx)
	if err != nil {
		return nil, false, nil, err
	}
	c.mu.Lock()
	c.store[hash] = snap
	c.mu.Unlock()
	return snap, false, release, nil
}

func counterValue(reg *obs.Registry, name string) float64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// TestExecuteWarmSharedCache: with WithSnapshots, the prefix is produced
// through the cache — computed on the first campaign, reused (hit, no
// prefix re-run) on the second — and runner_prefix_runs counts only the
// actual prefix executions.
func TestExecuteWarmSharedCache(t *testing.T) {
	cache := newStubCache()
	reg := obs.NewRegistry()
	pool := New(1).WithMetrics(reg).WithSnapshots(cache)

	prefixRuns := 0
	wc := WarmConfig{Hash: "h", Prefix: func(context.Context) (any, error) {
		prefixRuns++
		return "snapshot", nil
	}}
	runs := []WarmRun{{
		Name: "warm",
		Hash: "h",
		Fork: func(_ context.Context, snap any) (any, error) { return "fork:" + snap.(string), nil },
		Cold: func(context.Context) (any, error) { return "cold", nil },
	}}

	for campaign := 0; campaign < 2; campaign++ {
		vals, err := Values[string](pool.ExecuteWarm(context.Background(), wc, runs))
		if err != nil {
			t.Fatalf("campaign %d: %v", campaign, err)
		}
		if vals[0] != "fork:snapshot" {
			t.Fatalf("campaign %d: %q", campaign, vals[0])
		}
	}
	if prefixRuns != 1 {
		t.Fatalf("prefix ran %d times, want 1 (second campaign hits the cache)", prefixRuns)
	}
	if cache.acquires != 2 || cache.computes != 1 {
		t.Fatalf("acquires=%d computes=%d, want 2/1", cache.acquires, cache.computes)
	}
	if v := counterValue(reg, "runner_prefix_runs"); v != 1 {
		t.Fatalf("runner_prefix_runs = %v, want 1", v)
	}
	if v := counterValue(reg, "runner_forks_served"); v != 2 {
		t.Fatalf("runner_forks_served = %v, want 2", v)
	}
}

// TestExecuteWarmReleaseBeforeCold pins the hold window: the cache entry is
// released after the serial forks, before the cold fallbacks fan out — a
// concurrent campaign waiting on the prefix is not blocked behind unrelated
// cold work.
func TestExecuteWarmReleaseBeforeCold(t *testing.T) {
	cache := newStubCache()
	pool := New(1).WithSnapshots(cache)
	releasedAtCold := false
	wc := WarmConfig{Hash: "h", Prefix: func(context.Context) (any, error) { return "snap", nil }}
	runs := []WarmRun{
		{
			Name: "warm", Hash: "h",
			Fork: func(context.Context, any) (any, error) { return "fork", nil },
			Cold: func(context.Context) (any, error) { return "cold", nil },
		},
		{
			Name: "mismatch", Hash: "other",
			Fork: func(context.Context, any) (any, error) { return "fork", nil },
			Cold: func(context.Context) (any, error) {
				cache.mu.Lock()
				releasedAtCold = cache.released
				cache.mu.Unlock()
				return "cold", nil
			},
		},
	}
	vals, err := Values[string](pool.ExecuteWarm(context.Background(), wc, runs))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != "fork" || vals[1] != "cold" {
		t.Fatalf("outcomes %v", vals)
	}
	if !releasedAtCold {
		t.Fatal("snapshot still held while cold fallbacks ran")
	}
}

// TestExecuteWarmCacheFailureDemotes: a failing cache/prefix demotes every
// eligible run to its cold path instead of failing the campaign.
func TestExecuteWarmCacheFailureDemotes(t *testing.T) {
	cache := newStubCache()
	reg := obs.NewRegistry()
	pool := New(1).WithMetrics(reg).WithSnapshots(cache)
	wc := WarmConfig{Hash: "h", Prefix: func(context.Context) (any, error) {
		return nil, errors.New("no convergence")
	}}
	runs := []WarmRun{{
		Name: "warm", Hash: "h",
		Fork: func(context.Context, any) (any, error) { return "fork", nil },
		Cold: func(context.Context) (any, error) { return "cold", nil },
	}}
	vals, err := Values[string](pool.ExecuteWarm(context.Background(), wc, runs))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != "cold" {
		t.Fatalf("demoted run returned %q, want cold", vals[0])
	}
	if v := counterValue(reg, "runner_prefix_runs"); v != 0 {
		t.Fatalf("runner_prefix_runs = %v after failed prefix", v)
	}
}
