// Package runner is the experiment execution engine: it fans independent
// simulation runs (seeds, sweep points, scenario variants) across a bounded
// worker pool. Every run builds its own scheduler and sim.Streams from its
// own seed, so runs share no mutable state and the aggregated output of a
// parallel campaign is bit-identical to the sequential one — the pool only
// changes wall-clock time, never results.
//
// Guarantees:
//
//   - Deterministic ordering: Execute returns one Outcome per submitted Run,
//     in submission order, regardless of completion order.
//   - Panic isolation: a panicking run is reported as a failed Outcome (with
//     the stack trace in its error), not a crashed campaign.
//   - Cancellation: when the context is cancelled, in-flight runs finish (a
//     discrete-event simulation is not preemptible) but no further run
//     starts; undispatched runs are marked Skipped with the context error.
//   - Timing: every executed run records its wall-clock duration and start
//     offset, so a campaign can report per-run liveness.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gptpfta/internal/obs"
)

// Run is one independent unit of work: typically a full simulation campaign
// for one seed or one sweep point. Do must be self-contained — it derives
// all randomness from its own seed and touches no state shared with other
// runs.
type Run struct {
	// Name labels the run in outcomes and panic reports ("seed/7",
	// "S=125ms", "stack/unikernel").
	Name string
	// Do executes the run. The context is advisory: long multi-part runs
	// should check ctx.Err() between parts, single simulations may ignore
	// it.
	Do func(ctx context.Context) (any, error)
}

// Outcome is the result of one Run.
type Outcome struct {
	Name  string
	Index int // position in the submitted slice
	// Value is Do's result when Err is nil.
	Value any
	Err   error
	// Panicked reports that Do panicked; Err then carries the recovered
	// value and stack.
	Panicked bool
	// Skipped reports that the run never started because the campaign was
	// cancelled first; Err then carries the context error.
	Skipped bool
	// StartedAt is the run's start offset from Execute's invocation, Wall
	// its execution wall-clock time. Both are zero for skipped runs.
	StartedAt time.Duration
	Wall      time.Duration
}

// Failed reports whether the run produced no usable value.
func (o Outcome) Failed() bool { return o.Err != nil }

// Pool executes runs on a fixed number of workers.
type Pool struct {
	workers int

	// Campaign metrics, resolved once by WithMetrics; nil handles are
	// inert, so Execute records unconditionally. The registry must be the
	// campaign's own (e.g. the CLI's), never a simulation's: outcomes of
	// concurrent runs are recorded from worker goroutines.
	mRuns     *obs.Counter
	mFailed   *obs.Counter
	mPanicked *obs.Counter
	mSkipped  *obs.Counter
	mWall     *obs.Histogram

	// Warm-start campaign accounting (ExecuteWarm).
	mPrefixRuns    *obs.Counter
	mForksServed   *obs.Counter
	mColdFallbacks *obs.Counter

	// snapshots optionally shares converged prefix snapshots between
	// campaigns (WithSnapshots); nil keeps ExecuteWarm's per-campaign
	// prefix execution.
	snapshots SnapshotCache
}

// wallBuckets spans experiment wall times from milliseconds (smoke scales)
// to minutes (full-length campaigns), in seconds.
var wallBuckets = []float64{0.01, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300}

// New returns a pool with the given worker count; n <= 0 selects
// GOMAXPROCS.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// WithMetrics instruments the pool: run counts by outcome class and a
// wall-time histogram, registered with reg. It returns the pool for
// chaining; a nil registry is a no-op.
func (p *Pool) WithMetrics(reg *obs.Registry) *Pool {
	p.mRuns = reg.Counter("runner_runs_total")
	p.mFailed = reg.Counter("runner_runs_failed")
	p.mPanicked = reg.Counter("runner_runs_panicked")
	p.mSkipped = reg.Counter("runner_runs_skipped")
	p.mWall = reg.Histogram("runner_run_wall_seconds", wallBuckets)
	p.mPrefixRuns = reg.Counter("runner_prefix_runs")
	p.mForksServed = reg.Counter("runner_forks_served")
	p.mColdFallbacks = reg.Counter("runner_cold_fallbacks")
	return p
}

// WithSnapshots attaches a shared prefix-snapshot cache: ExecuteWarm
// acquires the campaign's prefix snapshot from the cache (computing it on a
// miss) instead of always executing the prefix itself. A nil cache is a
// no-op. It returns the pool for chaining.
func (p *Pool) WithSnapshots(c SnapshotCache) *Pool {
	p.snapshots = c
	return p
}

// Workers reports the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// record updates the pool's campaign metrics for one outcome. Counter and
// histogram updates are atomic, so workers record concurrently.
func (p *Pool) record(o Outcome) {
	p.mRuns.Inc()
	switch {
	case o.Skipped:
		p.mSkipped.Inc()
	case o.Panicked:
		p.mPanicked.Inc()
	case o.Err != nil:
		p.mFailed.Inc()
	}
	if !o.Skipped {
		p.mWall.Observe(o.Wall.Seconds())
	}
}

// Execute runs every Run and returns their outcomes in submission order.
// It always returns len(runs) outcomes; individual failures (including
// panics and cancellation) are reported per-outcome, never as a partial
// slice.
func (p *Pool) Execute(ctx context.Context, runs []Run) []Outcome {
	outcomes := make([]Outcome, len(runs))
	if len(runs) == 0 {
		return outcomes
	}
	workers := p.workers
	if workers > len(runs) {
		workers = len(runs)
	}

	epoch := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				outcomes[i] = execute(ctx, epoch, i, runs[i])
				p.record(outcomes[i])
			}
		}()
	}

	next := 0
feed:
	for ; next < len(runs); next++ {
		select {
		case jobs <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Runs never handed to a worker were skipped by cancellation. A worker
	// may also have observed the cancellation after receiving its index;
	// normalise those to the same skipped shape.
	for i := next; i < len(runs); i++ {
		outcomes[i] = Outcome{Name: runs[i].Name, Index: i, Err: ctx.Err(), Skipped: true}
		p.record(outcomes[i])
	}
	return outcomes
}

// execute runs one Run with panic recovery and timing.
func execute(ctx context.Context, epoch time.Time, idx int, r Run) (out Outcome) {
	out = Outcome{Name: r.Name, Index: idx}
	if err := ctx.Err(); err != nil {
		out.Err = err
		out.Skipped = true
		return out
	}
	start := time.Now()
	out.StartedAt = start.Sub(epoch)
	defer func() {
		out.Wall = time.Since(start)
		if rec := recover(); rec != nil {
			out.Panicked = true
			out.Value = nil
			out.Err = fmt.Errorf("runner: run %q panicked: %v\n%s", r.Name, rec, debug.Stack())
		}
	}()
	out.Value, out.Err = r.Do(ctx)
	return out
}

// FirstError returns the first failed outcome's error in submission order,
// wrapped with the run name, or nil when every run succeeded.
func FirstError(outcomes []Outcome) error {
	for _, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("run %q: %w", o.Name, o.Err)
		}
	}
	return nil
}

// Values unwraps every outcome's value as T, in submission order, stopping
// at the first failed run or type mismatch.
func Values[T any](outcomes []Outcome) ([]T, error) {
	vals := make([]T, 0, len(outcomes))
	for _, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("run %q: %w", o.Name, o.Err)
		}
		v, ok := o.Value.(T)
		if !ok {
			return nil, fmt.Errorf("run %q: value is %T, want %T", o.Name, o.Value, *new(T))
		}
		vals = append(vals, v)
	}
	return vals, nil
}
