package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// campaign builds n runs whose values depend only on the submitted index —
// the stand-in for independent seeded simulations.
func campaign(n int, delay func(i int) time.Duration) []Run {
	runs := make([]Run, n)
	for i := 0; i < n; i++ {
		i := i
		runs[i] = Run{
			Name: fmt.Sprintf("run/%d", i),
			Do: func(context.Context) (any, error) {
				if delay != nil {
					time.Sleep(delay(i))
				}
				return i * i, nil
			},
		}
	}
	return runs
}

// TestDeterministicOrdering is the pool's core guarantee: the aggregated
// outcome slice is identical for any worker count, even when completion
// order is scrambled by run-length skew.
func TestDeterministicOrdering(t *testing.T) {
	// Early runs are the slowest, so with >1 worker the later runs finish
	// first and ordering by completion would be reversed.
	delay := func(i int) time.Duration { return time.Duration(16-i) * time.Millisecond }
	sequential := New(1).Execute(context.Background(), campaign(16, delay))
	parallel := New(8).Execute(context.Background(), campaign(16, delay))

	if len(sequential) != 16 || len(parallel) != 16 {
		t.Fatalf("outcome counts: %d vs %d", len(sequential), len(parallel))
	}
	for i := range sequential {
		s, p := sequential[i], parallel[i]
		if s.Index != i || p.Index != i {
			t.Fatalf("outcome %d carries indices %d / %d", i, s.Index, p.Index)
		}
		if s.Name != p.Name || s.Value != p.Value || s.Value != i*i {
			t.Fatalf("outcome %d diverges: sequential %v=%v, parallel %v=%v",
				i, s.Name, s.Value, p.Name, p.Value)
		}
		if s.Err != nil || p.Err != nil {
			t.Fatalf("outcome %d failed: %v / %v", i, s.Err, p.Err)
		}
		if s.Wall <= 0 || p.Wall <= 0 {
			t.Fatalf("outcome %d missing wall-clock timing", i)
		}
	}
}

// TestPanicIsolation: a panicking run must be reported as one failed
// outcome, with the campaign's other runs unaffected.
func TestPanicIsolation(t *testing.T) {
	runs := campaign(8, nil)
	runs[3] = Run{Name: "run/3", Do: func(context.Context) (any, error) {
		panic("seed 3 exploded")
	}}
	outcomes := New(4).Execute(context.Background(), runs)
	for i, o := range outcomes {
		if i == 3 {
			if !o.Panicked || o.Err == nil {
				t.Fatalf("run 3 not reported as panicked: %+v", o)
			}
			if !strings.Contains(o.Err.Error(), "seed 3 exploded") {
				t.Fatalf("panic value lost: %v", o.Err)
			}
			if !strings.Contains(o.Err.Error(), "runner_test.go") {
				t.Fatalf("stack trace lost: %v", o.Err)
			}
			continue
		}
		if o.Err != nil || o.Value != i*i {
			t.Fatalf("healthy run %d disturbed: %+v", i, o)
		}
	}
	if err := FirstError(outcomes); err == nil || !strings.Contains(err.Error(), `run "run/3"`) {
		t.Fatalf("FirstError = %v", err)
	}
}

// TestCancellation: cancelling the campaign context stops dispatch; runs
// that never started are Skipped with the context error, and runs already
// in flight complete normally.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	runs := make([]Run, 16)
	for i := range runs {
		i := i
		runs[i] = Run{
			Name: fmt.Sprintf("run/%d", i),
			Do: func(ctx context.Context) (any, error) {
				started.Add(1)
				if i == 0 {
					cancel() // the first run aborts the campaign
					return i, nil
				}
				<-ctx.Done() // in-flight runs see the cancellation
				return i, nil
			},
		}
	}
	outcomes := New(2).Execute(ctx, runs)

	if outcomes[0].Err != nil || outcomes[0].Value != 0 {
		t.Fatalf("first run should have completed: %+v", outcomes[0])
	}
	var skipped int
	for _, o := range outcomes {
		if o.Skipped {
			skipped++
			if !errors.Is(o.Err, context.Canceled) {
				t.Fatalf("skipped run %d carries %v, want context.Canceled", o.Index, o.Err)
			}
			if o.Value != nil || o.Wall != 0 {
				t.Fatalf("skipped run %d has execution artefacts: %+v", o.Index, o)
			}
		}
	}
	// With 2 workers at most a handful of runs can be in flight or already
	// handed over when the cancellation lands; the bulk must be skipped.
	if skipped < len(runs)-4 {
		t.Fatalf("only %d/%d runs skipped after cancellation (started %d)",
			skipped, len(runs), started.Load())
	}
	if int(started.Load())+skipped != len(runs) {
		t.Fatalf("runs unaccounted for: started %d + skipped %d != %d",
			started.Load(), skipped, len(runs))
	}
}

// TestPreCancelled: an already-cancelled context executes nothing.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outcomes := New(4).Execute(ctx, campaign(6, nil))
	for _, o := range outcomes {
		if !o.Skipped || !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("run %d executed under a cancelled context: %+v", o.Index, o)
		}
	}
}

func TestRunErrorsDoNotAbortCampaign(t *testing.T) {
	boom := errors.New("boom")
	runs := campaign(5, nil)
	runs[1] = Run{Name: "run/1", Do: func(context.Context) (any, error) { return nil, boom }}
	outcomes := New(3).Execute(context.Background(), runs)
	if !errors.Is(outcomes[1].Err, boom) || outcomes[1].Panicked || outcomes[1].Skipped {
		t.Fatalf("outcome 1: %+v", outcomes[1])
	}
	for _, i := range []int{0, 2, 3, 4} {
		if outcomes[i].Err != nil {
			t.Fatalf("run %d affected by sibling failure: %v", i, outcomes[i].Err)
		}
	}
}

func TestValues(t *testing.T) {
	outcomes := New(4).Execute(context.Background(), campaign(6, nil))
	vals, err := Values[int](outcomes)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	if _, err := Values[string](outcomes); err == nil {
		t.Fatal("type mismatch undetected")
	}
}

func TestWorkerDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must fall back to GOMAXPROCS")
	}
	if New(7).Workers() != 7 {
		t.Fatal("explicit worker count ignored")
	}
	// More workers than runs must not deadlock or drop outcomes.
	outcomes := New(64).Execute(context.Background(), campaign(3, nil))
	if len(outcomes) != 3 || FirstError(outcomes) != nil {
		t.Fatalf("outcomes: %+v", outcomes)
	}
	// An empty campaign is a no-op.
	if got := New(4).Execute(context.Background(), nil); len(got) != 0 {
		t.Fatalf("empty campaign produced %d outcomes", len(got))
	}
}
