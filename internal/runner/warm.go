// Warm-start campaign execution: run a shared convergence prefix once,
// snapshot it, and fork every eligible sweep point from the snapshot instead
// of re-simulating the prefix per point. Eligibility is decided by a
// config-prefix hash (core.PrefixHash): a point whose hash differs from the
// prefix's — its parameters shape the warm-up — automatically falls back to
// a cold run through the regular pool.
//
// Forks resume in place on the prefix's component graph, so warm runs
// execute serially in submission order; only the cold fallbacks fan out
// across workers. Determinism is unaffected either way: a forked run is
// bit-identical to the equivalent cold run by the Snapshotter contract.
package runner

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"gptpfta/internal/obs"
)

// WarmRun is one unit of a warm-start campaign.
type WarmRun struct {
	// Name labels the run in outcomes and panic reports.
	Name string
	// Hash is the run's config-prefix hash. The run forks from the campaign
	// snapshot iff it equals WarmConfig.Hash; otherwise Cold executes.
	Hash string
	// Fork resumes the run from the shared prefix snapshot. It is invoked
	// serially — never concurrently with another Fork of the same campaign.
	Fork func(ctx context.Context, snap any) (any, error)
	// Cold executes the run from scratch (the fallback, pool-parallel).
	Cold func(ctx context.Context) (any, error)
}

// WarmConfig describes a campaign's shared prefix.
type WarmConfig struct {
	// Hash is the prefix's config hash (core.PrefixHash of the shared
	// configuration and boundary).
	Hash string
	// Prefix executes the shared warm-up once and returns its snapshot. It
	// only runs when at least one submitted run is fork-eligible.
	Prefix func(ctx context.Context) (any, error)
}

// SnapshotCache shares converged prefix snapshots between campaigns: a pool
// configured with WithSnapshots asks the cache for the campaign's prefix
// snapshot instead of always executing the prefix itself, so concurrent
// sweeps sharing a convergence prefix pay for it once. The implementation
// lives with its owner (the job server's LRU, internal/serve); the runner
// only defines the contract.
type SnapshotCache interface {
	// Acquire returns the snapshot stored under hash, running compute to
	// produce it on a miss. hit reports whether the snapshot came from the
	// cache (compute did not run).
	//
	// The snapshot is exclusively held by the caller until release is
	// invoked: forks resume in place on the snapshot's component graph, so
	// only one campaign may fork from it at a time. Concurrent Acquires of
	// the same hash therefore serialise — the first computes, the rest
	// block (or give up when ctx is cancelled) and then hit. release must
	// be called exactly once, and only when err is nil.
	Acquire(ctx context.Context, hash string, compute func(context.Context) (any, error)) (snap any, hit bool, release func(), err error)
}

// ExecuteWarm executes a warm-start campaign and returns one Outcome per
// run, in submission order. Fork-eligible runs (hash match) share one prefix
// execution and fork serially; the rest fall back to cold runs on the pool.
// A failed or panicking prefix demotes every eligible run to cold — the
// campaign degrades to Execute, it never fails wholesale.
func (p *Pool) ExecuteWarm(ctx context.Context, wc WarmConfig, runs []WarmRun) []Outcome {
	outcomes := make([]Outcome, len(runs))
	if len(runs) == 0 {
		return outcomes
	}

	var warmIdx, coldIdx []int
	for i, r := range runs {
		if wc.Prefix != nil && wc.Hash != "" && r.Hash == wc.Hash && r.Fork != nil {
			warmIdx = append(warmIdx, i)
		} else {
			coldIdx = append(coldIdx, i)
		}
	}

	epoch := time.Now()
	var snap any
	var release func()
	if len(warmIdx) > 0 {
		var err error
		if p.snapshots != nil {
			var hit bool
			snap, hit, release, err = p.snapshots.Acquire(ctx, wc.Hash, func(ctx context.Context) (any, error) {
				return runPrefix(ctx, wc)
			})
			if err == nil && !hit {
				p.mPrefixRuns.Inc()
			}
		} else {
			snap, err = runPrefix(ctx, wc)
			if err == nil {
				p.mPrefixRuns.Inc()
			}
		}
		if err != nil {
			// Demote: the prefix could not be produced, every would-be fork
			// runs cold instead.
			coldIdx = append(coldIdx, warmIdx...)
			warmIdx = nil
		}
	}

	// Forks run serially while the snapshot is held; the cache entry is
	// released before the cold fallbacks fan out, so a concurrent campaign
	// waiting on the same prefix can start forking as early as possible.
	for _, i := range warmIdx {
		r := runs[i]
		outcomes[i] = execute(ctx, epoch, i, Run{Name: r.Name, Do: func(ctx context.Context) (any, error) {
			return r.Fork(ctx, snap)
		}})
		p.mForksServed.Inc()
		p.record(outcomes[i])
	}
	if release != nil {
		release()
	}

	if len(coldIdx) > 0 {
		coldRuns := make([]Run, len(coldIdx))
		for k, i := range coldIdx {
			coldRuns[k] = Run{Name: runs[i].Name, Do: runs[i].Cold}
		}
		for k, o := range p.Execute(ctx, coldRuns) {
			o.Index = coldIdx[k]
			outcomes[coldIdx[k]] = o
			p.mColdFallbacks.Inc()
		}
	}
	return outcomes
}

// WarmSummary renders a campaign's warm-start accounting line from the
// registry its pools were instrumented with: how many shared prefixes ran,
// how many sweep points were served by a fork, and how many fell back to a
// cold run (prefix-hash mismatch, missing prefix, or prefix failure).
func WarmSummary(reg *obs.Registry) string {
	var prefixes, forks, cold float64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "runner_prefix_runs":
			prefixes += m.Value
		case "runner_forks_served":
			forks += m.Value
		case "runner_cold_fallbacks":
			cold += m.Value
		}
	}
	return fmt.Sprintf("warm-start: %.0f prefix runs, %.0f forks served, %.0f cold fallbacks",
		prefixes, forks, cold)
}

// runPrefix executes the shared prefix with panic isolation.
func runPrefix(ctx context.Context, wc WarmConfig) (snap any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			snap = nil
			err = fmt.Errorf("runner: warm prefix panicked: %v\n%s", rec, debug.Stack())
		}
	}()
	return wc.Prefix(ctx)
}
