// Package chaos is the deterministic network fault-injection subsystem: a
// declarative scenario plan (a timeline of link, bridge, and partition
// actions with absolute or periodic triggers) is executed against the
// simulated topology by an Engine. All stochastic behavior the plan enables
// (burst loss) draws from the links' dedicated seed-derived loss streams,
// so a chaos campaign is bit-reproducible from the master seed; the engine
// itself consumes no randomness. With no plan active nothing in this
// package touches the simulation, preserving the golden digests.
package chaos

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("30s", "125ms") and unmarshals from either a string or nanoseconds.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		p, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", x, err)
		}
		*d = Duration(p)
	case float64:
		*d = Duration(x)
	default:
		return fmt.Errorf("chaos: duration must be a string or nanoseconds, got %T", v)
	}
	return nil
}

// Std returns the value as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Action operations.
const (
	OpLinkDown      = "link-down"
	OpLinkUp        = "link-up"
	OpBurstLoss     = "burst-loss"
	OpDelaySpike    = "delay-spike"
	OpAsymShift     = "asym-shift"
	OpBridgeFail    = "bridge-fail"
	OpBridgeRestore = "bridge-restore"
	OpPartition     = "partition"
	OpHeal          = "heal"

	// WAN-tier operations (multi-site fabrics; the bound topology must
	// implement SiteTopology).
	//
	// site-fail kills every switch of the listed sites (the whole LAN goes
	// dark, the site's aggregate clock stops answering); site-restore
	// brings them back. wan-partition severs the gateway-chain links
	// between the listed sites and the rest; wan-heal reconnects them.
	// wan-asym-drift ramps the listed links' WAN delay axis
	// (Link.SetWanDelay) linearly from its current value to (Extra, Asym)
	// over Duration — a slow path migration, not a step — and then holds;
	// it never auto-reverts (ramp back with a second action targeting
	// zero).
	OpSiteFail     = "site-fail"
	OpSiteRestore  = "site-restore"
	OpWanAsymDrift = "wan-asym-drift"
	OpWanPartition = "wan-partition"
	OpWanHeal      = "wan-heal"
)

// Ops lists every valid action operation.
var Ops = []string{
	OpLinkDown, OpLinkUp, OpBurstLoss, OpDelaySpike, OpAsymShift,
	OpBridgeFail, OpBridgeRestore, OpPartition, OpHeal,
	OpSiteFail, OpSiteRestore, OpWanAsymDrift, OpWanPartition, OpWanHeal,
}

// Action is one timeline entry: an operation over named topology elements,
// fired at an absolute instant (At) or periodically (Every, first firing at
// Start or one period in). Self-limiting operations (everything except
// link-up, bridge-restore, and heal) revert automatically after Duration;
// with Duration zero they persist until an explicit counter-action.
type Action struct {
	// Op is the operation, one of the Op* constants.
	Op string `json:"op"`

	// Links names the target links for link and loss/delay operations.
	// Link names are core topology names: "sw1-sw2" for the bridge mesh,
	// the VM name ("c11") for a VM uplink.
	Links []string `json:"links,omitempty"`
	// Bridges names the target bridges for bridge-fail/bridge-restore.
	Bridges []string `json:"bridges,omitempty"`
	// Groups assigns device names to partition sides: every link whose two
	// endpoint devices land in different groups is severed. Devices not
	// named in any group keep all their links.
	Groups [][]string `json:"groups,omitempty"`
	// Sites names target sites (0-based) for the WAN-tier operations
	// site-fail, site-restore, and wan-partition.
	Sites []int `json:"sites,omitempty"`

	// At triggers once at the given simulation time.
	At Duration `json:"at,omitempty"`
	// Every triggers periodically; Start sets the first firing (default:
	// one period in). Mutually exclusive with At.
	Every Duration `json:"every,omitempty"`
	Start Duration `json:"start,omitempty"`

	// Duration reverts the action this long after each firing.
	Duration Duration `json:"duration,omitempty"`

	// Gilbert–Elliott parameters for burst-loss. Each target link gets its
	// own model instance (the burst state machine is per-channel).
	GoodLoss  float64 `json:"good_loss,omitempty"`
	BadLoss   float64 `json:"bad_loss,omitempty"`
	GoodToBad float64 `json:"good_to_bad,omitempty"`
	BadToGood float64 `json:"bad_to_good,omitempty"`

	// Extra is added latency for delay-spike and asym-shift; Asym is the
	// additional one-direction shift for asym-shift.
	Extra Duration `json:"extra,omitempty"`
	Asym  Duration `json:"asym,omitempty"`
}

// Plan is a named scenario: a set of actions executed on one timeline.
type Plan struct {
	Name    string   `json:"name,omitempty"`
	Actions []Action `json:"actions"`
}

// Parse decodes and statically validates a JSON plan.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Validate checks the plan statically (topology names are resolved later,
// when an Engine binds the plan to a concrete system).
func (p *Plan) Validate() error {
	if len(p.Actions) == 0 {
		return fmt.Errorf("chaos: plan %q has no actions", p.Name)
	}
	for i := range p.Actions {
		if err := p.Actions[i].validate(); err != nil {
			return fmt.Errorf("chaos: action %d: %w", i, err)
		}
	}
	return nil
}

func (a *Action) validate() error {
	switch a.Op {
	case OpLinkDown, OpLinkUp, OpBurstLoss, OpDelaySpike, OpAsymShift:
		if len(a.Links) == 0 {
			return fmt.Errorf("%s: no target links", a.Op)
		}
	case OpBridgeFail, OpBridgeRestore:
		if len(a.Bridges) == 0 {
			return fmt.Errorf("%s: no target bridges", a.Op)
		}
	case OpPartition:
		if len(a.Groups) < 2 {
			return fmt.Errorf("partition: need at least 2 groups, got %d", len(a.Groups))
		}
		seen := map[string]bool{}
		for _, g := range a.Groups {
			if len(g) == 0 {
				return fmt.Errorf("partition: empty group")
			}
			for _, dev := range g {
				if seen[dev] {
					return fmt.Errorf("partition: device %q in more than one group", dev)
				}
				seen[dev] = true
			}
		}
	case OpHeal:
		// heal reverts every live partition; no targets.
	case OpSiteFail, OpSiteRestore, OpWanPartition:
		if len(a.Sites) == 0 {
			return fmt.Errorf("%s: no target sites", a.Op)
		}
		seen := map[int]bool{}
		for _, s := range a.Sites {
			if s < 0 {
				return fmt.Errorf("%s: negative site index %d", a.Op, s)
			}
			if seen[s] {
				return fmt.Errorf("%s: site %d listed twice", a.Op, s)
			}
			seen[s] = true
		}
	case OpWanAsymDrift:
		if len(a.Links) == 0 {
			return fmt.Errorf("%s: no target links", a.Op)
		}
		if a.Duration == 0 {
			return fmt.Errorf("%s: needs a ramp duration", a.Op)
		}
	case OpWanHeal:
		// wan-heal reverts every live WAN partition; no targets.
	default:
		return fmt.Errorf("unknown op %q (want one of %s)", a.Op, strings.Join(Ops, ", "))
	}

	if a.At < 0 || a.Every < 0 || a.Start < 0 || a.Duration < 0 || a.Extra < 0 {
		return fmt.Errorf("%s: negative durations are invalid", a.Op)
	}
	if a.At > 0 && a.Every > 0 {
		return fmt.Errorf("%s: at and every are mutually exclusive", a.Op)
	}
	if a.At == 0 && a.Every == 0 {
		return fmt.Errorf("%s: needs a trigger (at or every)", a.Op)
	}
	if a.Start > 0 && a.Every == 0 {
		return fmt.Errorf("%s: start requires every", a.Op)
	}
	if a.Every > 0 && a.Duration >= a.Every {
		return fmt.Errorf("%s: duration %v must be shorter than period %v", a.Op, a.Duration.Std(), a.Every.Std())
	}

	if a.Op == OpBurstLoss {
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"good_loss", a.GoodLoss}, {"bad_loss", a.BadLoss},
			{"good_to_bad", a.GoodToBad}, {"bad_to_good", a.BadToGood},
		} {
			if math.IsNaN(v.val) || v.val < 0 || v.val > 1 {
				return fmt.Errorf("burst-loss: %s = %v outside [0, 1]", v.name, v.val)
			}
		}
		if a.BadLoss == 0 && a.GoodLoss == 0 {
			return fmt.Errorf("burst-loss: all loss rates zero (no-op)")
		}
	}
	if (a.Op == OpDelaySpike || a.Op == OpAsymShift) && a.Extra == 0 && a.Asym == 0 {
		return fmt.Errorf("%s: no delay configured", a.Op)
	}
	// wan-asym-drift may target a negative asymmetry (either direction of
	// the WAN path can be the slow one) and a zero pair (a controlled ramp
	// back to the nominal path); the LAN-tier asym-shift keeps its
	// non-negative contract.
	if a.Asym < 0 && a.Op != OpWanAsymDrift {
		return fmt.Errorf("%s: negative asym shift", a.Op)
	}
	return nil
}

// reverts reports whether the action self-reverts after Duration. For
// wan-asym-drift, Duration is the ramp time, not a revert timer: the
// drifted delay holds until a counter-ramp.
func (a *Action) reverts() bool {
	if a.Duration == 0 {
		return false
	}
	switch a.Op {
	case OpLinkUp, OpBridgeRestore, OpHeal, OpSiteRestore, OpWanHeal, OpWanAsymDrift:
		return false
	}
	return true
}
