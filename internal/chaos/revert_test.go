package chaos

import (
	"testing"
	"time"

	"gptpfta/internal/obs"
	"gptpfta/internal/sim"
)

// revertCount reads the chaos_reverts counter back out of a registry.
func revertCount(reg *obs.Registry) float64 {
	var n float64
	for _, m := range reg.Snapshot() {
		if m.Name == "chaos_reverts" {
			n += m.Value
		}
	}
	return n
}

// TestRevertFiresAfterStop pins the plan-end contract: Stop cancels the
// triggers but an already-scheduled revert still fires, so a stopped engine
// never leaves a self-limiting fault latched — for one-shot and periodic
// actions alike.
func TestRevertFiresAfterStop(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{
		{Op: OpLinkDown, Links: []string{"sw1-sw2"},
			At: Duration(time.Second), Duration: Duration(2 * time.Second)},
		{Op: OpLinkDown, Links: []string{"n1"},
			Every: Duration(10 * time.Second), Duration: Duration(4 * time.Second)},
	}}
	e := mustEngine(t, tt, p)
	reg := obs.NewRegistry()
	e.Instrument(reg)
	fired := 0
	e.SetActionObserver(func(Action) { fired++ })

	// Mid-fault for both actions: the one-shot at t=1s and the periodic's
	// first firing at t=10s are live, their reverts (t=3s already fired,
	// t=14s pending) bracket the Stop below.
	if err := tt.sched.RunUntil(sim.Time(11 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !tt.links["n1"].Down() {
		t.Fatal("periodic fault not active at t=11s")
	}
	e.Stop()
	if err := tt.sched.RunUntil(sim.Time(40 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if tt.links["n1"].Down() || tt.links["sw1-sw2"].Down() {
		t.Fatal("fault latched after Stop: the pending revert never fired")
	}
	if fired != 2 {
		t.Fatalf("actions fired %d times, want 2 (no firings after Stop)", fired)
	}
	if got := revertCount(reg); got != 2 {
		t.Fatalf("chaos_reverts = %v, want 2", got)
	}
}

// TestOverlappingActionsSameLink: two periodic link-down actions with
// different periods target the same link, so their fault windows overlap.
// Reverts restore the baseline (they do not reference-count): the earlier
// revert inside an overlap re-raises the link, the later one is an idempotent
// no-op, and once both windows close the link stays up until the next
// trigger.
func TestOverlappingActionsSameLink(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{
		{Op: OpLinkDown, Links: []string{"sw1-sw2"},
			Every: Duration(7 * time.Second), Duration: Duration(2 * time.Second)},
		{Op: OpLinkDown, Links: []string{"sw1-sw2"},
			Every: Duration(10 * time.Second), Duration: Duration(3 * time.Second)},
	}}
	e := mustEngine(t, tt, p)
	reg := obs.NewRegistry()
	e.Instrument(reg)

	l := tt.links["sw1-sw2"]
	// Timeline: fires at 7, 10, 14, 20, 21; reverts at 9, 13, 16, 23, 23.
	// The windows [20,23) and [21,23) overlap; both reverts land at t=23.
	checks := []struct {
		at   time.Duration
		down bool
		why  string
	}{
		{8 * time.Second, true, "first 7s-period window"},
		{9500 * time.Millisecond, false, "between windows"},
		{12 * time.Second, true, "first 10s-period window"},
		{22 * time.Second, true, "overlap of both windows"},
		{24 * time.Second, false, "both overlapping windows reverted"},
	}
	for _, c := range checks {
		if err := tt.sched.RunUntil(sim.Time(c.at)); err != nil {
			t.Fatal(err)
		}
		if l.Down() != c.down {
			t.Fatalf("t=%v (%s): down=%v, want %v", c.at, c.why, l.Down(), c.down)
		}
	}
	e.Stop()
	if got := revertCount(reg); got != 5 {
		t.Fatalf("chaos_reverts = %v, want 5 (overlapping reverts both fire)", got)
	}
}

// TestEngineSnapshotRestoresMidFault: snapshotting scheduler + link + engine
// in the middle of a partition and restoring after the fault has healed
// replays the remainder bit-identically — the restored cut-set map makes the
// re-armed revert closure heal exactly the original links, twice over.
func TestEngineSnapshotRestoresMidFault(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{{
		Op:       OpPartition,
		Groups:   [][]string{{"sw1", "n1"}, {"sw2", "n2"}},
		At:       Duration(time.Second),
		Duration: Duration(4 * time.Second),
	}}}
	e := mustEngine(t, tt, p)
	reg := obs.NewRegistry()
	e.Instrument(reg)

	l := tt.links["sw1-sw2"]
	if err := tt.sched.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !l.Down() {
		t.Fatal("partition not active at t=2s")
	}
	schedSnap := tt.sched.Snapshot()
	linkSnap := l.Snapshot()
	engSnap := e.Snapshot()
	if got := engSnap.(*engineSnapshot).partitioned; len(got) != 1 || got[0] != "sw1-sw2" {
		t.Fatalf("mid-fault snapshot cut-set = %v, want [sw1-sw2]", got)
	}

	// Play past the heal: the revert at t=5s empties the cut-set.
	if err := tt.sched.RunUntil(sim.Time(6 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if l.Down() || len(e.partitioned) != 0 {
		t.Fatalf("fault not healed at t=6s (down=%v, cut-set %d)", l.Down(), len(e.partitioned))
	}

	// Rewind to the mid-fault instant and replay.
	tt.sched.Restore(schedSnap)
	l.Restore(linkSnap)
	e.Restore(engSnap)
	if tt.sched.Now() != sim.Time(2*time.Second) || !l.Down() {
		t.Fatalf("restore: now=%v down=%v, want t=2s with the fault live", tt.sched.Now(), l.Down())
	}
	if len(e.partitioned) != 1 || e.partitioned["sw1-sw2"] != l {
		t.Fatalf("restore: cut-set %v does not name the live link", e.partitioned)
	}
	if err := tt.sched.RunUntil(sim.Time(6 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if l.Down() || len(e.partitioned) != 0 {
		t.Fatal("replayed revert did not heal the restored cut-set")
	}
	if got := revertCount(reg); got != 2 {
		t.Fatalf("chaos_reverts = %v, want 2 (one per replay)", got)
	}
}
