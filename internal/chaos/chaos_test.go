package chaos

import (
	"math"
	"strings"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/netsim"
	"gptpfta/internal/obs"
	"gptpfta/internal/sim"
)

// testTopo is a 2-bridge, 2-NIC diamond: n1 - sw1 - sw2 - n2, with names
// matching the core convention ("sw1-sw2" mesh link, NIC links named after
// the NIC device).
type testTopo struct {
	sched   *sim.Scheduler
	streams *sim.Streams
	links   map[string]*netsim.Link
	bridges map[string]*netsim.Bridge
	nics    map[string]*netsim.NIC
}

func (t *testTopo) Link(name string) *netsim.Link     { return t.links[name] }
func (t *testTopo) Bridge(name string) *netsim.Bridge { return t.bridges[name] }
func (t *testTopo) Links() map[string]*netsim.Link    { return t.links }

func newTopo(t *testing.T) *testTopo {
	t.Helper()
	tt := &testTopo{
		sched:   sim.NewScheduler(),
		streams: sim.NewStreams(5),
		links:   map[string]*netsim.Link{},
		bridges: map[string]*netsim.Bridge{},
		nics:    map[string]*netsim.NIC{},
	}
	phc := func(name string) *clock.PHC {
		osc := clock.NewOscillator(clock.OscillatorConfig{}, tt.streams.Stream("osc/"+name), tt.sched.Now())
		return clock.NewPHC(tt.sched, osc, nil, clock.PHCConfig{})
	}
	mkBridge := func(name string) *netsim.Bridge {
		b := netsim.NewBridge(name, tt.sched, tt.streams.Stream("br/"+name), phc(name),
			netsim.BridgeConfig{Ports: 2, Residence: map[int]netsim.ResidenceModel{
				netsim.PriorityBestEffort: {Base: time.Microsecond},
			}})
		tt.bridges[name] = b
		return b
	}
	sw1, sw2 := mkBridge("sw1"), mkBridge("sw2")
	n1 := netsim.NewNIC("n1", tt.sched, phc("n1"))
	n2 := netsim.NewNIC("n2", tt.sched, phc("n2"))
	tt.nics["n1"], tt.nics["n2"] = n1, n2
	lc := netsim.LinkConfig{Propagation: 500 * time.Nanosecond}
	connect := func(name string, a, b *netsim.Port) {
		l, err := netsim.Connect(tt.sched, tt.streams.Stream("link/"+name), lc, a, b)
		if err != nil {
			t.Fatalf("connect %s: %v", name, err)
		}
		tt.links[name] = l
	}
	connect("n1", n1.Port(), sw1.Port(0))
	connect("sw1-sw2", sw1.Port(1), sw2.Port(0))
	connect("n2", n2.Port(), sw2.Port(1))
	sw1.AddRoute("nic/n2", 1)
	sw2.AddRoute("nic/n2", 1)
	sw2.AddRoute("nic/n1", 0)
	sw1.AddRoute("nic/n1", 0)
	return tt
}

func mustEngine(t *testing.T, tt *testTopo, p *Plan) *Engine {
	t.Helper()
	e, err := New(tt.sched, tt, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return e
}

func TestParseRoundTrip(t *testing.T) {
	const js = `{
		"name": "smoke",
		"actions": [
			{"op": "link-down", "links": ["sw1-sw2"], "at": "1s", "duration": "500ms"},
			{"op": "burst-loss", "links": ["n1"], "every": "10s", "duration": "2s",
			 "bad_loss": 0.8, "good_to_bad": 0.05, "bad_to_good": 0.2},
			{"op": "partition", "groups": [["sw1", "n1"], ["sw2", "n2"]], "at": "30s", "duration": "5s"}
		]
	}`
	p, err := Parse([]byte(js))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Name != "smoke" || len(p.Actions) != 3 {
		t.Fatalf("parsed %q with %d actions", p.Name, len(p.Actions))
	}
	if p.Actions[0].At.Std() != time.Second || p.Actions[0].Duration.Std() != 500*time.Millisecond {
		t.Fatalf("duration strings misparsed: %+v", p.Actions[0])
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"actions": [{"op": "link-down", "links": ["x"], "at": "1s", "typo": 1}]}`))
	if err == nil || !strings.Contains(err.Error(), "typo") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		a    Action
		want string
	}{
		{"unknown op", Action{Op: "nuke", At: 1}, "unknown op"},
		{"no trigger", Action{Op: OpLinkDown, Links: []string{"x"}}, "trigger"},
		{"both triggers", Action{Op: OpLinkDown, Links: []string{"x"}, At: 1, Every: 1}, "mutually exclusive"},
		{"no links", Action{Op: OpLinkDown, At: 1}, "no target links"},
		{"no bridges", Action{Op: OpBridgeFail, At: 1}, "no target bridges"},
		{"one group", Action{Op: OpPartition, Groups: [][]string{{"a"}}, At: 1}, "at least 2"},
		{"dup device", Action{Op: OpPartition, Groups: [][]string{{"a"}, {"a"}}, At: 1}, "more than one group"},
		{"negative", Action{Op: OpLinkDown, Links: []string{"x"}, At: -1}, "negative"},
		{"nan rate", Action{Op: OpBurstLoss, Links: []string{"x"}, At: 1, BadLoss: math.NaN()}, "outside [0, 1]"},
		{"rate above 1", Action{Op: OpBurstLoss, Links: []string{"x"}, At: 1, BadLoss: 1.5}, "outside [0, 1]"},
		{"zero-rate burst", Action{Op: OpBurstLoss, Links: []string{"x"}, At: 1}, "no-op"},
		{"overlapping period", Action{Op: OpLinkDown, Links: []string{"x"}, Every: 10, Duration: 10}, "shorter than period"},
		{"no delay", Action{Op: OpDelaySpike, Links: []string{"x"}, At: 1}, "no delay"},
	}
	for _, c := range cases {
		p := &Plan{Actions: []Action{c.a}}
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestNewRejectsUnknownNames(t *testing.T) {
	tt := newTopo(t)
	for _, p := range []*Plan{
		{Actions: []Action{{Op: OpLinkDown, Links: []string{"sw9-sw9"}, At: 1}}},
		{Actions: []Action{{Op: OpBridgeFail, Bridges: []string{"sw9"}, At: 1}}},
		{Actions: []Action{{Op: OpPartition, Groups: [][]string{{"sw1"}, {"ghost"}}, At: 1}}},
	} {
		if _, err := New(tt.sched, tt, p); err == nil {
			t.Errorf("unknown name accepted: %+v", p.Actions[0])
		}
	}
}

func TestLinkDownActionSelfReverts(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{{
		Op: OpLinkDown, Links: []string{"sw1-sw2"},
		At: Duration(time.Second), Duration: Duration(2 * time.Second),
	}}}
	e := mustEngine(t, tt, p)
	reg := obs.NewRegistry()
	e.Instrument(reg)

	l := tt.links["sw1-sw2"]
	if err := tt.sched.RunUntil(sim.Time(1500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !l.Down() {
		t.Fatal("link not down at t=1.5s")
	}
	if err := tt.sched.RunUntil(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if l.Down() {
		t.Fatal("link still down after revert")
	}
}

func TestPeriodicBurstLoss(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{{
		Op: OpBurstLoss, Links: []string{"n1"},
		Every: Duration(10 * time.Second), Duration: Duration(2 * time.Second),
		BadLoss: 0.9, GoodToBad: 0.1, BadToGood: 0.1,
	}}}
	e := mustEngine(t, tt, p)
	fired := 0
	e.SetActionObserver(func(a Action) {
		if a.Op != OpBurstLoss {
			t.Errorf("observer saw %q", a.Op)
		}
		fired++
	})
	if err := tt.sched.RunUntil(sim.Time(35 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("periodic action fired %d times in 35 s (period 10 s), want 3", fired)
	}
	e.Stop()
	if err := tt.sched.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("action fired after Stop: %d", fired)
	}
}

func TestPartitionCutsOnlyCrossGroupLinks(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{
		{Op: OpPartition, Groups: [][]string{{"sw1", "n1"}, {"sw2", "n2"}},
			At: Duration(time.Second)},
		{Op: OpHeal, At: Duration(5 * time.Second)},
	}}
	mustEngine(t, tt, p)
	if err := tt.sched.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !tt.links["sw1-sw2"].Down() {
		t.Fatal("cross-group link survived the partition")
	}
	if tt.links["n1"].Down() || tt.links["n2"].Down() {
		t.Fatal("intra-group link was cut")
	}
	if err := tt.sched.RunUntil(sim.Time(6 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if tt.links["sw1-sw2"].Down() {
		t.Fatal("heal did not restore the partitioned link")
	}
}

func TestBridgeFailAction(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{{
		Op: OpBridgeFail, Bridges: []string{"sw1"},
		At: Duration(time.Second), Duration: Duration(time.Second),
	}}}
	mustEngine(t, tt, p)
	if err := tt.sched.RunUntil(sim.Time(1500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !tt.bridges["sw1"].Failed() {
		t.Fatal("bridge not failed")
	}
	if err := tt.sched.RunUntil(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if tt.bridges["sw1"].Failed() {
		t.Fatal("bridge not restored")
	}
}

func TestAsymShiftAction(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{{
		Op: OpAsymShift, Links: []string{"sw1-sw2"},
		At: Duration(time.Second), Duration: Duration(time.Second),
		Extra: Duration(time.Microsecond), Asym: Duration(2 * time.Microsecond),
	}}}
	mustEngine(t, tt, p)
	// One frame during the shift, one after.
	var during, after sim.Time
	tt.sched.At(sim.Time(1200*time.Millisecond), func() {
		_, _ = tt.nics["n1"].Send(&netsim.Frame{Src: "nic/n1", Dst: "nic/n2"})
	})
	tt.sched.At(sim.Time(3*time.Second), func() {
		_, _ = tt.nics["n1"].Send(&netsim.Frame{Src: "nic/n1", Dst: "nic/n2"})
	})
	tt.nics["n2"].SetHandler(func(f *netsim.Frame, _ float64) {
		if tt.sched.Now() < sim.Time(2*time.Second) {
			during = tt.sched.Now()
		} else {
			after = tt.sched.Now()
		}
	})
	if err := tt.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if during == 0 || after == 0 {
		t.Fatal("frames not delivered")
	}
	lDuring := during - sim.Time(1200*time.Millisecond)
	lAfter := after - sim.Time(3*time.Second)
	if lDuring-lAfter != sim.Time(3*time.Microsecond) {
		t.Fatalf("asym shift added %v, want 3µs (extra+asym)", lDuring-lAfter)
	}
}

func TestEngineCountsActions(t *testing.T) {
	tt := newTopo(t)
	p := &Plan{Actions: []Action{{
		Op: OpLinkDown, Links: []string{"n1"},
		At: Duration(time.Second), Duration: Duration(time.Second),
	}}}
	e := mustEngine(t, tt, p)
	reg := obs.NewRegistry()
	e.Instrument(reg)
	if err := tt.sched.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var actions, reverts float64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "chaos_actions":
			actions += m.Value
		case "chaos_reverts":
			reverts += m.Value
		}
	}
	if actions != 1 || reverts != 1 {
		t.Fatalf("actions=%v reverts=%v, want 1/1", actions, reverts)
	}
}
