package chaos

import (
	"fmt"
	"sort"
	"time"

	"gptpfta/internal/netsim"
	"gptpfta/internal/obs"
	"gptpfta/internal/sim"
)

// Topology is the view of the simulated network the engine manipulates.
// core.System implements it over its named links and bridges.
type Topology interface {
	// Link resolves a link by topology name ("sw1-sw2", "c11"), nil if
	// unknown.
	Link(name string) *netsim.Link
	// Bridge resolves a bridge by name ("sw1"), nil if unknown.
	Bridge(name string) *netsim.Bridge
	// Links returns every named link, for partition cut-set computation.
	Links() map[string]*netsim.Link
}

// SiteTopology extends Topology for multi-site fabrics. A plan using the
// WAN-tier operations (site-fail, site-restore, wan-partition, wan-heal)
// can only bind to a topology implementing it.
type SiteTopology interface {
	// NumSites reports the number of sites.
	NumSites() int
	// SiteBridgeNames lists the switch names of one site.
	SiteBridgeNames(site int) []string
	// WanLinkName names the gateway-chain link joining site i and i+1,
	// for i in [0, NumSites−1).
	WanLinkName(i int) string
}

// Engine executes a Plan against a Topology on the simulation scheduler.
// It consumes no randomness itself — stochastic loss draws come from the
// links' dedicated loss streams — so two same-seed runs of the same plan
// are bit-identical.
type Engine struct {
	sched *sim.Scheduler
	topo  Topology
	plan  *Plan

	started     bool
	tickers     []*sim.Ticker
	partitioned map[string]*netsim.Link
	// wanPartitioned tracks chain links severed by wan-partition, healed
	// separately from device-level partitions (wan-heal vs heal).
	wanPartitioned map[string]*netsim.Link
	sites          SiteTopology // non-nil iff the plan uses WAN-tier ops
	observer       func(Action)

	obsActions map[string]*obs.Counter
	obsReverts *obs.Counter
}

// New binds a validated plan to a topology, resolving every referenced
// name up front so a typo fails at construction, not mid-campaign.
func New(sched *sim.Scheduler, topo Topology, plan *Plan) (*Engine, error) {
	if plan == nil {
		return nil, fmt.Errorf("chaos: nil plan")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	devices := map[string]bool{}
	for _, l := range topo.Links() {
		devices[l.End(0).Owner.DeviceName()] = true
		devices[l.End(1).Owner.DeviceName()] = true
	}
	sites, _ := topo.(SiteTopology)
	for i := range plan.Actions {
		a := &plan.Actions[i]
		for _, name := range a.Links {
			if topo.Link(name) == nil {
				return nil, fmt.Errorf("chaos: action %d (%s): unknown link %q", i, a.Op, name)
			}
		}
		for _, name := range a.Bridges {
			if topo.Bridge(name) == nil {
				return nil, fmt.Errorf("chaos: action %d (%s): unknown bridge %q", i, a.Op, name)
			}
		}
		for _, g := range a.Groups {
			for _, dev := range g {
				if !devices[dev] {
					return nil, fmt.Errorf("chaos: action %d (%s): unknown device %q", i, a.Op, dev)
				}
			}
		}
		if len(a.Sites) > 0 || a.Op == OpWanHeal {
			if sites == nil {
				return nil, fmt.Errorf("chaos: action %d (%s): topology has no site tier", i, a.Op)
			}
			for _, s := range a.Sites {
				if s >= sites.NumSites() {
					return nil, fmt.Errorf("chaos: action %d (%s): site %d out of range (have %d)", i, a.Op, s, sites.NumSites())
				}
			}
		}
	}
	return &Engine{
		sched:          sched,
		topo:           topo,
		plan:           plan,
		partitioned:    make(map[string]*netsim.Link),
		wanPartitioned: make(map[string]*netsim.Link),
		sites:          sites,
	}, nil
}

// Plan returns the bound plan.
func (e *Engine) Plan() *Plan { return e.plan }

// SetActionObserver installs a callback invoked after every action firing
// and revert — the composition hook the VM fault injector uses to count
// network faults alongside its own campaign.
func (e *Engine) SetActionObserver(fn func(Action)) { e.observer = fn }

// Instrument registers per-op action counters with reg. Nil-safe handles
// mean an uninstrumented engine pays nothing.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.obsActions = make(map[string]*obs.Counter, len(Ops))
	for _, op := range Ops {
		e.obsActions[op] = reg.Counter("chaos_actions", obs.L("op", op))
	}
	e.obsReverts = reg.Counter("chaos_reverts")
}

// Start schedules every action's triggers. Periodic actions run until Stop.
func (e *Engine) Start() error {
	if e.started {
		return fmt.Errorf("chaos: engine already started")
	}
	e.started = true
	for i := range e.plan.Actions {
		a := &e.plan.Actions[i]
		if a.Every > 0 {
			first := e.sched.Now().Add(a.Every.Std())
			if a.Start > 0 {
				// Anchor to the absolute plan instant, not the engine start:
				// a warm-started engine attached after t=0 then fires at the
				// same instants a cold t=0 engine would.
				first = sim.Time(a.Start)
			}
			tick, err := e.sched.Every(first, a.Every.Std(), func() { e.apply(a) })
			if err != nil {
				return err
			}
			e.tickers = append(e.tickers, tick)
			continue
		}
		e.sched.At(sim.Time(a.At), func() { e.apply(a) })
	}
	return nil
}

// Stop cancels periodic triggers. Already-scheduled reverts still fire, so
// a stopped engine leaves no fault permanently latched unless the plan
// explicitly made it permanent.
func (e *Engine) Stop() {
	for _, t := range e.tickers {
		t.Stop()
	}
	e.tickers = nil
}

// apply fires one action and, for self-limiting operations, schedules its
// revert.
func (e *Engine) apply(a *Action) {
	switch a.Op {
	case OpLinkDown:
		e.eachLink(a, func(l *netsim.Link) { l.SetDown(true) })
	case OpLinkUp:
		e.eachLink(a, func(l *netsim.Link) { l.SetDown(false) })
	case OpBurstLoss:
		e.eachLink(a, func(l *netsim.Link) {
			l.SetLossModel(&netsim.GilbertElliott{
				GoodLoss:  a.GoodLoss,
				BadLoss:   a.BadLoss,
				GoodToBad: a.GoodToBad,
				BadToGood: a.BadToGood,
			})
		})
	case OpDelaySpike:
		e.eachLink(a, func(l *netsim.Link) { l.SetDelayOverride(a.Extra.Std(), 0) })
	case OpAsymShift:
		e.eachLink(a, func(l *netsim.Link) { l.SetDelayOverride(a.Extra.Std(), a.Asym.Std()) })
	case OpBridgeFail:
		e.eachBridge(a, func(b *netsim.Bridge) { b.Fail() })
	case OpBridgeRestore:
		e.eachBridge(a, func(b *netsim.Bridge) { b.Restore() })
	case OpPartition:
		for name, l := range e.cutSet(a) {
			l.SetDown(true)
			e.partitioned[name] = l
		}
	case OpHeal:
		e.heal()
	case OpSiteFail:
		e.eachSiteBridge(a, func(b *netsim.Bridge) { b.Fail() })
	case OpSiteRestore:
		e.eachSiteBridge(a, func(b *netsim.Bridge) { b.Restore() })
	case OpWanAsymDrift:
		e.rampWanDelay(a)
	case OpWanPartition:
		for name, l := range e.wanCutSet(a) {
			l.SetDown(true)
			e.wanPartitioned[name] = l
		}
	case OpWanHeal:
		e.wanHeal()
	}
	e.obsActions[a.Op].Inc()
	if e.observer != nil {
		e.observer(*a)
	}
	if a.reverts() {
		e.sched.After(a.Duration.Std(), func() { e.revert(a) })
	}
}

// revert undoes one self-limiting action after its Duration.
func (e *Engine) revert(a *Action) {
	switch a.Op {
	case OpLinkDown:
		e.eachLink(a, func(l *netsim.Link) { l.SetDown(false) })
	case OpBurstLoss:
		e.eachLink(a, func(l *netsim.Link) { l.SetLossModel(nil) })
	case OpDelaySpike, OpAsymShift:
		e.eachLink(a, func(l *netsim.Link) { l.SetDelayOverride(0, 0) })
	case OpBridgeFail:
		e.eachBridge(a, func(b *netsim.Bridge) { b.Restore() })
	case OpPartition:
		e.heal()
	case OpSiteFail:
		e.eachSiteBridge(a, func(b *netsim.Bridge) { b.Restore() })
	case OpWanPartition:
		e.wanHeal()
	}
	e.obsReverts.Inc()
}

func (e *Engine) heal() {
	for _, l := range e.partitioned {
		l.SetDown(false)
	}
	e.partitioned = make(map[string]*netsim.Link)
}

func (e *Engine) wanHeal() {
	for _, l := range e.wanPartitioned {
		l.SetDown(false)
	}
	e.wanPartitioned = make(map[string]*netsim.Link)
}

func (e *Engine) eachSiteBridge(a *Action, fn func(*netsim.Bridge)) {
	for _, s := range a.Sites {
		for _, name := range e.sites.SiteBridgeNames(s) {
			fn(e.topo.Bridge(name))
		}
	}
}

// wanCutSet computes the gateway-chain links severed by a wan-partition:
// every chain link joining a listed site to an unlisted one.
func (e *Engine) wanCutSet(a *Action) map[string]*netsim.Link {
	in := map[int]bool{}
	for _, s := range a.Sites {
		in[s] = true
	}
	cut := map[string]*netsim.Link{}
	for i := 0; i < e.sites.NumSites()-1; i++ {
		if in[i] != in[i+1] {
			name := e.sites.WanLinkName(i)
			cut[name] = e.topo.Link(name)
		}
	}
	return cut
}

// wanRampSteps is the fixed step count of a wan-asym-drift ramp: enough
// steps that each increment stays well below the validity threshold (a
// slow drift, not a detectable step), few enough that the schedule stays
// cheap. Fixed so the ramp's event sequence is shard- and fork-invariant.
const wanRampSteps = 8

// rampWanDelay schedules a linear ramp of each target link's WAN delay
// axis from its value at firing time to (Extra, Asym) over Duration, then
// holds. The step closures capture only the link pointer and immutable
// step values, so they replay bit-identically across mid-ramp forks.
func (e *Engine) rampWanDelay(a *Action) {
	for _, name := range a.Links {
		l := e.topo.Link(name)
		baseE, baseA := l.WanDelay()
		targE, targA := a.Extra.Std(), a.Asym.Std()
		for k := 1; k <= wanRampSteps; k++ {
			frac := float64(k) / wanRampSteps
			stepE := baseE + time.Duration(float64(targE-baseE)*frac)
			stepA := baseA + time.Duration(float64(targA-baseA)*frac)
			e.sched.After(a.Duration.Std()*time.Duration(k)/wanRampSteps,
				func() { l.SetWanDelay(stepE, stepA) })
		}
	}
}

func (e *Engine) eachLink(a *Action, fn func(*netsim.Link)) {
	for _, name := range a.Links {
		fn(e.topo.Link(name))
	}
}

func (e *Engine) eachBridge(a *Action, fn func(*netsim.Bridge)) {
	for _, name := range a.Bridges {
		fn(e.topo.Bridge(name))
	}
}

// engineSnapshot captures the engine's fault bookkeeping for mid-fault
// forks: the live partition cut-sets, by link name.
type engineSnapshot struct {
	partitioned    []string
	wanPartitioned []string
}

// Snapshot implements sim.Snapshotter for mid-fault warm-start forks. A
// revert closure already queued in the scheduler captures the engine
// pointer; restoring the partition maps in place keeps that closure's heal
// semantics identical on every replay. Triggers and pending reverts
// themselves live in the scheduler's snapshot.
func (e *Engine) Snapshot() any {
	sn := &engineSnapshot{}
	for name := range e.partitioned {
		sn.partitioned = append(sn.partitioned, name)
	}
	for name := range e.wanPartitioned {
		sn.wanPartitioned = append(sn.wanPartitioned, name)
	}
	sort.Strings(sn.partitioned)
	sort.Strings(sn.wanPartitioned)
	return sn
}

// Restore implements sim.Snapshotter.
func (e *Engine) Restore(snap any) {
	sn := snap.(*engineSnapshot)
	e.partitioned = make(map[string]*netsim.Link, len(sn.partitioned))
	for _, name := range sn.partitioned {
		e.partitioned[name] = e.topo.Link(name)
	}
	e.wanPartitioned = make(map[string]*netsim.Link, len(sn.wanPartitioned))
	for _, name := range sn.wanPartitioned {
		e.wanPartitioned[name] = e.topo.Link(name)
	}
}

// cutSet computes the links severed by a partition: every link whose two
// endpoint devices are assigned to different groups. Devices absent from
// all groups keep their links.
func (e *Engine) cutSet(a *Action) map[string]*netsim.Link {
	group := map[string]int{}
	for gi, g := range a.Groups {
		for _, dev := range g {
			group[dev] = gi
		}
	}
	cut := map[string]*netsim.Link{}
	for name, l := range e.topo.Links() {
		g0, ok0 := group[l.End(0).Owner.DeviceName()]
		g1, ok1 := group[l.End(1).Owner.DeviceName()]
		if ok0 && ok1 && g0 != g1 {
			cut[name] = l
		}
	}
	return cut
}
