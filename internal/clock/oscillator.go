// Package clock models the imperfect hardware timescales of the testbed:
// free-running crystal oscillators with static frequency error and random
// wander, PTP hardware clocks (PHCs) that a servo can discipline, and the
// per-node platform counter (TSC) from which co-located VMs derive
// CLOCK_SYNCTIME.
//
// All clocks are functions of the simulation's ideal ("true") time; they are
// advanced lazily on read, so no periodic events are needed to keep them
// ticking. Frequency wander is a deterministic random walk over fixed
// true-time segments, drawn from a named sim.Streams stream, which keeps
// whole experiment runs reproducible.
package clock

import (
	"fmt"
	"math/rand"
	"time"

	"gptpfta/internal/sim"
)

const (
	// PPB scales parts-per-billion frequency offsets to dimensionless rate.
	ppbScale = 1e-9
	// defaultWanderSegment is the true-time granularity of the frequency
	// random walk.
	defaultWanderSegment = time.Second
)

// OscillatorConfig describes the imperfections of a crystal oscillator.
type OscillatorConfig struct {
	// StaticPPB is the constant frequency error in parts per billion.
	// IEEE 802.1AS assumes |error| <= 100 ppm for conformant clocks; the
	// paper's bound derivation uses r_max = 5 ppm.
	StaticPPB float64
	// WanderPPBPerSqrtSec is the standard deviation of the per-segment
	// random-walk step, normalised to a one-second segment.
	WanderPPBPerSqrtSec float64
	// Segment is the wander update granularity; defaults to one second.
	Segment time.Duration
}

// Oscillator is a free-running local timescale. Its rate relative to true
// time is (1 + (static + wander)·1e-9), where wander follows a random walk.
type Oscillator struct {
	cfg OscillatorConfig
	rng sim.RNG

	lastTrue  sim.Time // true instant of the last materialisation
	localNS   float64  // local nanoseconds elapsed since creation, at lastTrue
	wanderPPB float64  // current random-walk component
	segEnd    sim.Time // true instant at which the wander steps next
	stepPPB   float64  // per-segment random-walk standard deviation
}

// NewOscillator creates an oscillator whose wander stream is drawn from rng.
// The oscillator starts at local time 0 at true instant start.
func NewOscillator(cfg OscillatorConfig, rng sim.RNG, start sim.Time) *Oscillator {
	seg := cfg.Segment
	if seg <= 0 {
		seg = defaultWanderSegment
	}
	cfg.Segment = seg
	return &Oscillator{
		cfg:      cfg,
		rng:      rng,
		lastTrue: start,
		segEnd:   start.Add(seg),
		stepPPB:  cfg.WanderPPBPerSqrtSec * sqrtSeconds(seg),
	}
}

func sqrtSeconds(d time.Duration) float64 {
	s := d.Seconds()
	// Newton's method is overkill; use the obvious.
	if s <= 0 {
		return 0
	}
	x := s
	for i := 0; i < 32; i++ {
		x = 0.5 * (x + s/x)
	}
	return x
}

// FreqPPB reports the oscillator's current total frequency offset.
func (o *Oscillator) FreqPPB() float64 { return o.cfg.StaticPPB + o.wanderPPB }

// rate returns the current dimensionless local/true rate.
func (o *Oscillator) rate() float64 { return 1 + (o.cfg.StaticPPB+o.wanderPPB)*ppbScale }

// ElapsedAt returns the local nanoseconds elapsed since the oscillator was
// created, as observed at true instant now. now must not precede the last
// read; reads are monotone because true time is.
func (o *Oscillator) ElapsedAt(now sim.Time) float64 {
	o.advance(now)
	return o.localNS
}

// advance materialises local time up to true instant now, stepping the
// wander random walk at segment boundaries.
func (o *Oscillator) advance(now sim.Time) {
	if now <= o.lastTrue {
		return
	}
	for o.segEnd < now {
		dt := float64(o.segEnd - o.lastTrue)
		o.localNS += dt * o.rate()
		o.lastTrue = o.segEnd
		if o.rng != nil && o.stepPPB > 0 {
			o.wanderPPB += o.rng.NormFloat64() * o.stepPPB
		}
		o.segEnd = o.segEnd.Add(o.cfg.Segment)
	}
	dt := float64(now - o.lastTrue)
	o.localNS += dt * o.rate()
	o.lastTrue = now
}

// String describes the oscillator state for diagnostics.
func (o *Oscillator) String() string {
	return fmt.Sprintf("osc(static=%.1fppb wander=%.2fppb)", o.cfg.StaticPPB, o.wanderPPB)
}

// UniformPPB draws a static frequency error uniformly from [-maxPPB, maxPPB].
func UniformPPB(rng *rand.Rand, maxPPB float64) float64 {
	return (2*rng.Float64() - 1) * maxPPB
}
