package clock

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"gptpfta/internal/sim"
)

func newTestStreams() *sim.Streams { return sim.NewStreams(1) }

func TestOscillatorPerfectClock(t *testing.T) {
	s := sim.NewScheduler()
	o := NewOscillator(OscillatorConfig{}, nil, s.Now())
	if got := o.ElapsedAt(sim.Time(time.Second)); got != 1e9 {
		t.Fatalf("perfect oscillator elapsed = %v, want 1e9", got)
	}
}

func TestOscillatorStaticDrift(t *testing.T) {
	s := sim.NewScheduler()
	o := NewOscillator(OscillatorConfig{StaticPPB: 5000}, nil, s.Now()) // 5 ppm fast
	got := o.ElapsedAt(sim.Time(time.Second))
	want := 1e9 * (1 + 5000e-9)
	if math.Abs(got-want) > 1 {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

func TestOscillatorMonotone(t *testing.T) {
	streams := newTestStreams()
	o := NewOscillator(OscillatorConfig{StaticPPB: -4000, WanderPPBPerSqrtSec: 10},
		streams.Stream("osc"), 0)
	prev := o.ElapsedAt(0)
	for i := 1; i <= 5000; i++ {
		now := sim.Time(i) * sim.Time(7*time.Millisecond)
		v := o.ElapsedAt(now)
		if v < prev {
			t.Fatalf("oscillator went backwards at step %d: %v < %v", i, v, prev)
		}
		prev = v
	}
}

func TestOscillatorRereadSameInstant(t *testing.T) {
	streams := newTestStreams()
	o := NewOscillator(OscillatorConfig{WanderPPBPerSqrtSec: 50}, streams.Stream("osc"), 0)
	at := sim.Time(3 * time.Second)
	a := o.ElapsedAt(at)
	b := o.ElapsedAt(at)
	if a != b {
		t.Fatalf("re-read at same instant changed: %v != %v", a, b)
	}
}

func TestOscillatorWanderBounded(t *testing.T) {
	// Over 1000 one-second segments a 1 ppb/√s random walk should stay in
	// the tens of ppb, far below the static term — a sanity bound that the
	// wander magnitude is calibrated as documented.
	streams := newTestStreams()
	o := NewOscillator(OscillatorConfig{WanderPPBPerSqrtSec: 1}, streams.Stream("w"), 0)
	o.ElapsedAt(sim.Time(1000 * time.Second))
	if w := math.Abs(o.FreqPPB()); w > 200 {
		t.Fatalf("wander after 1000s = %v ppb, suspiciously large", w)
	}
}

// TestOscillatorRateWithinBound property: for drift rates within ±r, elapsed
// local time over any horizon stays within (1±(r+slack))·horizon.
func TestOscillatorRateWithinBound(t *testing.T) {
	streams := newTestStreams()
	f := func(ppbRaw int16, horizonMS uint16) bool {
		ppb := float64(ppbRaw)    // ±32767 ppb ≈ ±32.8 ppm
		h := int64(horizonMS) + 1 // ≥ 1 ms
		o := NewOscillator(OscillatorConfig{StaticPPB: ppb, WanderPPBPerSqrtSec: 1},
			streams.Stream("p"), 0)
		now := sim.Time(h * int64(time.Millisecond))
		got := o.ElapsedAt(now)
		trueNS := float64(now)
		bound := (math.Abs(ppb) + 100) * 1e-9 * trueNS // +100 ppb wander slack
		return math.Abs(got-trueNS) <= bound+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPHCAdjFreqContinuity(t *testing.T) {
	s := sim.NewScheduler()
	o := NewOscillator(OscillatorConfig{StaticPPB: 2000}, nil, s.Now())
	p := NewPHC(s, o, nil, PHCConfig{})
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	before := p.Now()
	p.AdjFreq(-2000)
	after := p.Now()
	if math.Abs(after-before) > 1e-6 {
		t.Fatalf("AdjFreq caused a jump: %v -> %v", before, after)
	}
	// With the servo cancelling the static drift the PHC should now track
	// true time rate within a few ppb.
	if rate := p.RatePPBVsTrue(); math.Abs(rate) > 0.1 {
		t.Fatalf("residual rate = %v ppb, want ~0", rate)
	}
}

func TestPHCStepExact(t *testing.T) {
	s := sim.NewScheduler()
	o := NewOscillator(OscillatorConfig{}, nil, s.Now())
	p := NewPHC(s, o, nil, PHCConfig{InitialOffsetNS: 100})
	p.Step(-250.5)
	if got := p.Now(); math.Abs(got-(-150.5)) > 1e-9 {
		t.Fatalf("after step Now() = %v, want -150.5", got)
	}
	p.Set(42)
	if got := p.Now(); math.Abs(got-42) > 1e-9 {
		t.Fatalf("after set Now() = %v, want 42", got)
	}
}

func TestPHCAdjFreqClamped(t *testing.T) {
	s := sim.NewScheduler()
	o := NewOscillator(OscillatorConfig{}, nil, s.Now())
	p := NewPHC(s, o, nil, PHCConfig{MaxAdjPPB: 1000})
	p.AdjFreq(5000)
	if got := p.FreqPPB(); got != 1000 {
		t.Fatalf("FreqPPB = %v, want clamp at 1000", got)
	}
	p.AdjFreq(-5000)
	if got := p.FreqPPB(); got != -1000 {
		t.Fatalf("FreqPPB = %v, want clamp at -1000", got)
	}
}

func TestPHCDisciplineTracksTarget(t *testing.T) {
	// A PHC with +5 ppm oscillator, corrected by -5 ppm servo adjustment,
	// must stay within ns of an ideal clock over 100 s.
	s := sim.NewScheduler()
	o := NewOscillator(OscillatorConfig{StaticPPB: 5000}, nil, s.Now())
	p := NewPHC(s, o, nil, PHCConfig{})
	p.AdjFreq(-5000 / (1 + 5000e-9)) // exact inverse of (1+e)
	if err := s.RunUntil(sim.Time(100 * time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if diff := math.Abs(p.Now() - 100e9); diff > 5 {
		t.Fatalf("disciplined PHC off by %v ns after 100 s", diff)
	}
}

func TestPHCTimestampJitter(t *testing.T) {
	s := sim.NewScheduler()
	streams := newTestStreams()
	o := NewOscillator(OscillatorConfig{}, nil, s.Now())
	p := NewPHC(s, o, streams.Stream("ts"), PHCConfig{TimestampJitterNS: 8})
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sum, sumSq float64
	const n = 2000
	for i := 0; i < n; i++ {
		d := p.Timestamp() - p.Now()
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 1 {
		t.Fatalf("timestamp jitter mean = %v, want ~0", mean)
	}
	if std < 6 || std > 10 {
		t.Fatalf("timestamp jitter std = %v, want ~8", std)
	}
}

func TestTSCSampleNoise(t *testing.T) {
	s := sim.NewScheduler()
	streams := newTestStreams()
	o := NewOscillator(OscillatorConfig{StaticPPB: 1000}, nil, s.Now())
	tsc := NewTSC(s, o, streams.Stream("tsc"), 30)
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	exact := tsc.Now()
	var maxDev float64
	for i := 0; i < 1000; i++ {
		dev := math.Abs(tsc.Sample() - exact)
		if dev > maxDev {
			maxDev = dev
		}
	}
	if maxDev == 0 {
		t.Fatal("TSC sample noise absent")
	}
	if maxDev > 30*6 {
		t.Fatalf("TSC sample deviation %v ns exceeds 6 sigma", maxDev)
	}
}

func TestDriftOffset(t *testing.T) {
	// Γ = 2·5ppm·125ms = 1.25 µs — the paper's value.
	got := DriftOffset(5e-6, 125*time.Millisecond)
	if got != 1250*time.Nanosecond*1000/1000 {
		if got != time.Duration(1250)*time.Nanosecond {
			t.Fatalf("DriftOffset = %v, want 1.25µs", got)
		}
	}
	if got != 1250*time.Nanosecond {
		t.Fatalf("DriftOffset = %v, want 1250ns", got)
	}
}

func TestUniformPPBRange(t *testing.T) {
	rng := newTestStreams().Stream("u")
	for i := 0; i < 1000; i++ {
		v := UniformPPB(rng, 5000)
		if v < -5000 || v > 5000 {
			t.Fatalf("UniformPPB out of range: %v", v)
		}
	}
}
