package clock

import "gptpfta/internal/sim"

// Warm-start snapshot support (sim.Snapshotter). Clocks are advanced lazily
// on read, so their whole mutable state is a handful of scalars; rewinding
// them in place keeps every pointer held by servos, NICs and shared-memory
// segments valid across a fork. The wander stream position itself is
// restored by sim.Streams.Restore, so advance() re-draws the identical
// random-walk steps after a fork.

// oscillatorSnapshot captures the lazily-materialised local timescale.
type oscillatorSnapshot struct {
	lastTrue  sim.Time
	localNS   float64
	wanderPPB float64
	segEnd    sim.Time
}

// Snapshot implements sim.Snapshotter.
func (o *Oscillator) Snapshot() any {
	return &oscillatorSnapshot{
		lastTrue:  o.lastTrue,
		localNS:   o.localNS,
		wanderPPB: o.wanderPPB,
		segEnd:    o.segEnd,
	}
}

// Restore implements sim.Snapshotter.
func (o *Oscillator) Restore(snap any) {
	sn := snap.(*oscillatorSnapshot)
	o.lastTrue = sn.lastTrue
	o.localNS = sn.localNS
	o.wanderPPB = sn.wanderPPB
	o.segEnd = sn.segEnd
}

// phcSnapshot captures the discipline state of a PHC plus its oscillator's
// local timescale, so owners snapshot the whole clock with one call.
type phcSnapshot struct {
	adjPPB float64
	baseNS float64
	oscRef float64
	osc    any
}

// Snapshot implements sim.Snapshotter.
func (p *PHC) Snapshot() any {
	return &phcSnapshot{adjPPB: p.adjPPB, baseNS: p.baseNS, oscRef: p.oscRef, osc: p.osc.Snapshot()}
}

// Restore implements sim.Snapshotter.
func (p *PHC) Restore(snap any) {
	sn := snap.(*phcSnapshot)
	p.adjPPB = sn.adjPPB
	p.baseNS = sn.baseNS
	p.oscRef = sn.oscRef
	p.osc.Restore(sn.osc)
}

// Snapshot implements sim.Snapshotter. The TSC itself is stateless — reads
// pass through to the oscillator — so its snapshot is the oscillator's.
func (t *TSC) Snapshot() any { return t.osc.Snapshot() }

// Restore implements sim.Snapshotter.
func (t *TSC) Restore(snap any) { t.osc.Restore(snap) }
