package clock

import (
	"time"

	"gptpfta/internal/sim"
)

// PHC is a PTP hardware clock: an oscillator-driven counter that a servo can
// discipline by adjusting its frequency (AdjFreq) or stepping its value
// (Step), mirroring the clock_adjtime(2) interface that ptp4l uses on the
// Intel i210's PHC.
//
// Timestamping reads add hardware timestamp jitter, modelling the i210's
// timestamp unit.
type PHC struct {
	sched *sim.Scheduler
	osc   *Oscillator
	rng   sim.RNG

	// Discipline state: value = baseNS + oscElapsedSinceRef·(1+adjPPB·1e-9).
	adjPPB  float64
	baseNS  float64
	oscRef  float64 // oscillator elapsed at the last discipline change
	jitterS float64 // hardware timestamp jitter sigma, ns

	maxAdjPPB float64
}

// PHCConfig configures a PHC.
type PHCConfig struct {
	// TimestampJitterNS is the 1-sigma Gaussian hardware timestamping
	// noise, in nanoseconds.
	TimestampJitterNS float64
	// InitialOffsetNS is the PHC value at creation (e.g. an arbitrary boot
	// epoch offset between nodes).
	InitialOffsetNS float64
	// MaxAdjPPB clamps servo frequency adjustments, like the kernel's
	// max_adj. Zero means the i210 default of 62499999 ppb.
	MaxAdjPPB float64
}

// NewPHC creates a PHC driven by osc. rng supplies timestamp jitter.
func NewPHC(sched *sim.Scheduler, osc *Oscillator, rng sim.RNG, cfg PHCConfig) *PHC {
	maxAdj := cfg.MaxAdjPPB
	if maxAdj == 0 {
		maxAdj = 62499999
	}
	return &PHC{
		sched:     sched,
		osc:       osc,
		rng:       rng,
		baseNS:    cfg.InitialOffsetNS,
		oscRef:    osc.ElapsedAt(sched.Now()),
		jitterS:   cfg.TimestampJitterNS,
		maxAdjPPB: maxAdj,
	}
}

// ReadAt returns the PHC value (ns) at true instant now, without jitter.
func (p *PHC) ReadAt(now sim.Time) float64 {
	elapsed := p.osc.ElapsedAt(now) - p.oscRef
	return p.baseNS + elapsed*(1+p.adjPPB*ppbScale)
}

// Now returns the current PHC value in nanoseconds, without jitter.
func (p *PHC) Now() float64 { return p.ReadAt(p.sched.Now()) }

// Timestamp returns the current PHC value with hardware timestamping jitter
// applied, as the NIC's timestamp unit would report for a frame at the wire
// right now.
func (p *PHC) Timestamp() float64 {
	v := p.Now()
	if p.rng != nil && p.jitterS > 0 {
		v += p.rng.NormFloat64() * p.jitterS
	}
	return v
}

// AdjFreq sets the servo frequency correction in parts per billion, clamped
// to the hardware's adjustment range. The clock value is continuous across
// the change.
func (p *PHC) AdjFreq(ppb float64) {
	if ppb > p.maxAdjPPB {
		ppb = p.maxAdjPPB
	}
	if ppb < -p.maxAdjPPB {
		ppb = -p.maxAdjPPB
	}
	p.rebase()
	p.adjPPB = ppb
}

// FreqPPB reports the current servo frequency correction.
func (p *PHC) FreqPPB() float64 { return p.adjPPB }

// Step adds delta nanoseconds to the clock value instantaneously.
func (p *PHC) Step(deltaNS float64) {
	p.rebase()
	p.baseNS += deltaNS
}

// Set forces the clock to the given value.
func (p *PHC) Set(valueNS float64) {
	p.rebase()
	p.baseNS = valueNS
}

// rebase materialises the current value into baseNS so that subsequent rate
// changes are continuous.
func (p *PHC) rebase() {
	now := p.sched.Now()
	p.baseNS = p.ReadAt(now)
	p.oscRef = p.osc.ElapsedAt(now)
}

// RatePPBVsTrue estimates the PHC's total rate offset versus true time, for
// test assertions: (1+osc)(1+adj)-1 in ppb.
func (p *PHC) RatePPBVsTrue() float64 {
	r := (1 + p.osc.FreqPPB()*ppbScale) * (1 + p.adjPPB*ppbScale)
	return (r - 1) / ppbScale
}

// TSC is the per-node platform counter (invariant TSC). It is a plain
// oscillator-driven counter visible to every VM on the node; STSHMEM clock
// parameters map TSC readings onto the fault-tolerant global time.
type TSC struct {
	sched *sim.Scheduler
	osc   *Oscillator
	rng   sim.RNG
	// readNoiseNS models the software read-out noise (vDSO path, cache
	// effects) a guest observes when sampling the counter.
	readNoiseNS float64
}

// NewTSC creates a platform counter on the given oscillator.
func NewTSC(sched *sim.Scheduler, osc *Oscillator, rng sim.RNG, readNoiseNS float64) *TSC {
	return &TSC{sched: sched, osc: osc, rng: rng, readNoiseNS: readNoiseNS}
}

// ReadAt returns the counter value (ns since node boot) at true instant now,
// without read-out noise.
func (t *TSC) ReadAt(now sim.Time) float64 { return t.osc.ElapsedAt(now) }

// Now returns the counter value at the current instant, without noise.
func (t *TSC) Now() float64 { return t.ReadAt(t.sched.Now()) }

// Sample returns a noisy read of the counter, as phc2sys would observe.
func (t *TSC) Sample() float64 {
	v := t.Now()
	if t.rng != nil && t.readNoiseNS > 0 {
		v += t.rng.NormFloat64() * t.readNoiseNS
	}
	return v
}

// DriftOffset computes the drift-offset term Γ = 2·r_max·S of the
// Kopetz/Ochsenreiter convergence function for a maximum drift rate r_max
// (dimensionless, e.g. 5e-6 for 5 ppm) and resynchronisation interval S.
func DriftOffset(rMax float64, s time.Duration) time.Duration {
	return time.Duration(2 * rMax * float64(s))
}
