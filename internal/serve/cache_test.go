package serve

import (
	"context"
	"errors"

	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gptpfta/internal/obs"
)

func counterValue(reg *obs.Registry, name string) float64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// TestCacheSingleFlight is the acceptance property: N concurrent Acquires
// of one hash run compute exactly once; everybody gets the same snapshot.
func TestCacheSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewSnapshotCache(reg, 4, 0)
	var computes atomic.Int64
	snapshot := &struct{ x int }{x: 99}

	const n = 8
	var wg sync.WaitGroup
	got := make([]any, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, _, release, err := c.Acquire(context.Background(), "h1", func(context.Context) (any, error) {
				computes.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return snapshot, nil
			})
			if err != nil {
				t.Errorf("acquire %d: %v", i, err)
				return
			}
			got[i] = snap
			release()
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, g := range got {
		if g != snapshot {
			t.Fatalf("acquire %d got %v", i, g)
		}
	}
	if h := counterValue(reg, "snapcache_hits"); h != n-1 {
		t.Fatalf("hits = %v, want %d", h, n-1)
	}
	if m := counterValue(reg, "snapcache_misses"); m != 1 {
		t.Fatalf("misses = %v, want 1", m)
	}
}

// TestCacheExclusiveHold pins the fork-safety contract: while one caller
// holds an entry, a second Acquire of the same hash blocks until release.
func TestCacheExclusiveHold(t *testing.T) {
	c := NewSnapshotCache(nil, 4, 0)
	_, _, release, err := c.Acquire(context.Background(), "h1", func(context.Context) (any, error) {
		return "snap", nil
	})
	if err != nil {
		t.Fatal(err)
	}

	acquired := make(chan struct{})
	go func() {
		_, hit, release2, err := c.Acquire(context.Background(), "h1", nil)
		if err != nil || !hit {
			t.Errorf("second acquire: hit=%v err=%v", hit, err)
		}
		close(acquired)
		release2()
	}()

	select {
	case <-acquired:
		t.Fatal("second acquire proceeded while the entry was held")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("second acquire never woke after release")
	}
}

// TestCacheWaiterCancellation: a waiter blocked on a held entry honours its
// context.
func TestCacheWaiterCancellation(t *testing.T) {
	c := NewSnapshotCache(nil, 4, 0)
	_, _, release, err := c.Acquire(context.Background(), "h1", func(context.Context) (any, error) {
		return "snap", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.Acquire(ctx, "h1", nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want deadline error, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter never returned")
	}
}

// TestCacheFailedComputeRetries: a failed compute is not cached, and the
// next Acquire retries it.
func TestCacheFailedComputeRetries(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewSnapshotCache(reg, 4, 0)
	boom := errors.New("converge failed")
	if _, _, _, err := c.Acquire(context.Background(), "h1", func(context.Context) (any, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want compute error, got %v", err)
	}
	snap, hit, release, err := c.Acquire(context.Background(), "h1", func(context.Context) (any, error) {
		return "ok", nil
	})
	if err != nil || hit || snap != "ok" {
		t.Fatalf("retry: snap=%v hit=%v err=%v", snap, hit, err)
	}
	release()
	if m := counterValue(reg, "snapcache_misses"); m != 2 {
		t.Fatalf("misses = %v, want 2 (failure counted too)", m)
	}
}

// TestCacheLRUEviction: the entry bound evicts the least recently used
// unheld snapshot.
func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewSnapshotCache(reg, 2, 0)
	for _, h := range []string{"a", "b", "c"} {
		h := h
		_, _, release, err := c.Acquire(context.Background(), h, func(context.Context) (any, error) {
			return "snap-" + h, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	if e := counterValue(reg, "snapcache_evictions"); e != 1 {
		t.Fatalf("evictions = %v, want 1", e)
	}
	// "a" was the LRU victim: acquiring it again recomputes...
	var computed bool
	_, hit, release, err := c.Acquire(context.Background(), "a", func(context.Context) (any, error) {
		computed = true
		return "snap-a2", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	release()
	if hit || !computed {
		t.Fatal("evicted entry served from cache")
	}
	// ...while "c" (recently used) is still cached.
	_, hit, release, err = c.Acquire(context.Background(), "c", nil)
	if err != nil || !hit {
		t.Fatalf("live entry missed: hit=%v err=%v", hit, err)
	}
	release()
}

// TestCacheByteBoundEviction: the byte bound, fed by the (test-replaced)
// sizer, evicts until the estimate fits.
func TestCacheByteBoundEviction(t *testing.T) {
	c := NewSnapshotCache(nil, -1, 100)
	c.SetSizer(func(any) int64 { return 60 })
	for _, h := range []string{"a", "b"} {
		h := h
		_, _, release, err := c.Acquire(context.Background(), h, func(context.Context) (any, error) {
			return h, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if n, b := c.Len(), c.Bytes(); n != 1 || b != 60 {
		t.Fatalf("len=%d bytes=%d, want 1 entry / 60 bytes", n, b)
	}
}

// TestCacheNeverEvictsHeld: an over-bounds cache keeps held entries alive
// until release.
func TestCacheNeverEvictsHeld(t *testing.T) {
	c := NewSnapshotCache(nil, 1, 0)
	_, _, releaseA, err := c.Acquire(context.Background(), "a", func(context.Context) (any, error) {
		return "snap-a", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Insert "b" while "a" is held: the cache is over its entry bound but
	// must not evict the held entry.
	_, _, releaseB, err := c.Acquire(context.Background(), "b", func(context.Context) (any, error) {
		return "snap-b", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	releaseB()
	if n := c.Len(); n < 1 {
		t.Fatalf("len = %d", n)
	}
	// "a" must still be there: re-acquiring after release hits.
	releaseA()
	_, hit, release, err := c.Acquire(context.Background(), "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if !hit {
		t.Fatal("held entry was evicted")
	}
}

// TestCacheDeepSize sanity-checks the reflective size estimator on shapes a
// snapshot graph actually contains.
func TestCacheDeepSize(t *testing.T) {
	if s := deepSize(nil); s != 0 {
		t.Fatalf("nil size %d", s)
	}
	buf := make([]byte, 1024)
	if s := deepSize(&buf); s < 1024 {
		t.Fatalf("1 KiB slice estimated at %d bytes", s)
	}
	type node struct {
		next *node
		data [64]byte
	}
	a := &node{}
	a.next = a // cycle must terminate
	if s := deepSize(a); s < 64 || s > 1024 {
		t.Fatalf("cyclic node estimated at %d bytes", s)
	}
	shared := make([]float64, 512)
	pair := struct{ x, y []float64 }{shared, shared}
	single := deepSize(struct{ x []float64 }{shared})
	if s := deepSize(pair); s >= 2*single {
		t.Fatalf("shared backing array double-counted: pair=%d single=%d", s, single)
	}
	m := map[string][]int{"k": make([]int, 100)}
	if s := deepSize(m); s < 800 {
		t.Fatalf("map estimated at %d bytes", s)
	}
}
