// Package serve runs experiment campaigns as a service: an HTTP job API
// (cmd/served) over a bounded work queue, fanning jobs across runner pools,
// with a shared LRU cache of converged warm-start snapshots so concurrent
// sweeps that share a convergence prefix pay for it once.
package serve

import (
	"container/list"
	"context"
	"sync"

	"gptpfta/internal/obs"
)

// SnapshotCache is a size-bounded LRU of converged prefix snapshots keyed by
// core.PrefixHash, implementing runner.SnapshotCache. It provides:
//
//   - single-flight computation: concurrent Acquires of one hash run the
//     prefix once, the rest wait and hit;
//   - exclusive holds: forks resume in place on the snapshot's component
//     graph, so an entry is checked out to exactly one campaign at a time
//     and concurrent campaigns serialise on it;
//   - bounded memory: LRU eviction by entry count and by estimated deep
//     size, never evicting a held entry.
type SnapshotCache struct {
	maxEntries int
	maxBytes   int64
	sizeOf     func(any) int64

	mu    sync.Mutex
	cond  *sync.Cond
	byKey map[string]*cacheEntry
	lru   *list.List // front = most recently used
	bytes int64

	mHits, mMisses, mEvictions *obs.Counter
}

// cacheEntry is one cached snapshot. held covers both states that exclude
// other campaigns: the initial compute (snap not yet set) and a checked-out
// fork sequence.
type cacheEntry struct {
	hash  string
	snap  any
	size  int64
	held  bool
	ready bool // snap/size are valid (compute finished)
	elem  *list.Element
}

// NewSnapshotCache returns a cache bounded to maxEntries snapshots (<= 0:
// unbounded) and maxBytes of estimated snapshot memory (<= 0: unbounded),
// instrumented on reg: snapcache_hits / snapcache_misses /
// snapcache_evictions counters and snapcache_entries / snapcache_bytes
// gauges. A nil registry disables instrumentation.
func NewSnapshotCache(reg *obs.Registry, maxEntries int, maxBytes int64) *SnapshotCache {
	c := &SnapshotCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		sizeOf:     deepSize,
		byKey:      make(map[string]*cacheEntry),
		lru:        list.New(),
		mHits:      reg.Counter("snapcache_hits"),
		mMisses:    reg.Counter("snapcache_misses"),
		mEvictions: reg.Counter("snapcache_evictions"),
	}
	c.cond = sync.NewCond(&c.mu)
	reg.GaugeFunc("snapcache_entries", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.byKey))
	})
	reg.GaugeFunc("snapcache_bytes", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.bytes)
	})
	return c
}

// SetSizer replaces the snapshot size estimator (deepSize by default). Call
// before first use; tests use it to drive byte-bounded eviction with known
// sizes.
func (c *SnapshotCache) SetSizer(f func(any) int64) { c.sizeOf = f }

// Acquire implements runner.SnapshotCache. On a miss it runs compute (once,
// no matter how many campaigns ask) and stores the snapshot; on a hit the
// cached snapshot is returned without running compute. Either way the entry
// is exclusively held by the caller until release is invoked; concurrent
// Acquires of the same hash block until then, or give up when their ctx is
// cancelled. A failed compute is not cached — the error is returned to the
// computing caller, and one waiter takes over the compute.
func (c *SnapshotCache) Acquire(ctx context.Context, hash string, compute func(context.Context) (any, error)) (snap any, hit bool, release func(), err error) {
	c.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, false, nil, err
		}
		e, ok := c.byKey[hash]
		if !ok {
			// Miss: claim the slot (held, not ready) so concurrent
			// Acquires wait instead of computing a second prefix.
			e = &cacheEntry{hash: hash, held: true}
			c.byKey[hash] = e
			c.mMisses.Inc()
			c.mu.Unlock()

			snap, err := compute(ctx)

			c.mu.Lock()
			if err != nil {
				// Drop the claim; a waiter (if any) retries the compute.
				delete(c.byKey, hash)
				c.cond.Broadcast()
				c.mu.Unlock()
				return nil, false, nil, err
			}
			e.snap = snap
			e.size = c.sizeOf(snap)
			e.ready = true
			e.elem = c.lru.PushFront(e)
			c.bytes += e.size
			c.evictLocked()
			c.mu.Unlock()
			return snap, false, c.releaser(e), nil
		}
		if e.ready && !e.held {
			e.held = true
			c.lru.MoveToFront(e.elem)
			c.mHits.Inc()
			c.mu.Unlock()
			return e.snap, true, c.releaser(e), nil
		}
		// Computing or checked out by another campaign: wait for the next
		// release/broadcast, waking early if ctx is cancelled.
		c.waitLocked(ctx)
	}
}

// releaser returns the entry's release func: it returns the snapshot to the
// pool of available entries and wakes waiters. Safe to call once (the
// runner's contract); extra calls are ignored.
func (c *SnapshotCache) releaser(e *cacheEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			e.held = false
			// The entry may have been over-bounds while held.
			c.evictLocked()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
	}
}

// waitLocked blocks on the cache condition until the next broadcast or ctx
// cancellation. Called and returns with c.mu held.
func (c *SnapshotCache) waitLocked(ctx context.Context) {
	stop := context.AfterFunc(ctx, func() {
		// Take the lock so the broadcast cannot fire between the waiter's
		// cancellation check and its cond.Wait.
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	c.cond.Wait()
	stop()
}

// evictLocked drops least-recently-used, unheld entries until both bounds
// hold. Held entries (computing or checked out) are skipped — evicting a
// snapshot a campaign is forking on would corrupt the fork — so the cache
// can transiently exceed its bounds while everything is held.
func (c *SnapshotCache) evictLocked() {
	over := func() bool {
		return (c.maxEntries > 0 && len(c.byKey) > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)
	}
	for e := c.lru.Back(); e != nil && over(); {
		prev := e.Prev()
		entry := e.Value.(*cacheEntry)
		if !entry.held {
			c.lru.Remove(e)
			delete(c.byKey, entry.hash)
			c.bytes -= entry.size
			c.mEvictions.Inc()
		}
		e = prev
	}
}

// Len returns the number of cached snapshots (held or not).
func (c *SnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Bytes returns the estimated memory pinned by cached snapshots.
func (c *SnapshotCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
