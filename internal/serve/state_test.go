package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gptpfta/internal/experiments"
)

// TestServerStateRestart: with a state dir, a finished job's envelope
// survives a full server restart — the new process answers the status,
// listing and result endpoints for it byte-identically, and fresh
// submissions continue the id sequence past the restored job.
func TestServerStateRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := rawConfig(t, experiments.BoundsConfig{Seed: 3, Duration: 3 * time.Minute})

	s1 := New(Options{Workers: 1, StateDir: dir})
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	st, _ := postJob(t, ts1, JobRequest{Experiment: "bounds", Config: cfg})
	waitDone(t, ts1, st.ID)
	before := fetchResults(t, ts1, st.ID)
	ts1.Close()
	s1.Stop()

	s2 := New(Options{Workers: 1, StateDir: dir})
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		s2.Stop()
	})
	if loaded := counterValue(s2.Metrics(), "served_state_loaded"); loaded != 1 {
		t.Fatalf("served_state_loaded = %v, want 1", loaded)
	}

	// The restored job answers status and result exactly as before.
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != JobDone || got.Experiment != "bounds" {
		t.Fatalf("restored status = %+v, want done bounds job", got)
	}
	after := fetchResults(t, ts2, st.ID)
	rawBefore, _ := json.Marshal(before)
	rawAfter, _ := json.Marshal(after)
	if !bytes.Equal(rawBefore, rawAfter) {
		t.Fatalf("restored results differ:\nbefore: %s\nafter:  %s", rawBefore, rawAfter)
	}

	// New submissions continue past the persisted id and both jobs list.
	st2, _ := postJob(t, ts2, JobRequest{Experiment: "bounds", Config: cfg})
	if st2.ID <= st.ID {
		t.Fatalf("post-restart job id %s does not continue past restored %s", st2.ID, st.ID)
	}
	waitDone(t, ts2, st2.ID)
	list, err := http.Get(ts2.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(list.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	list.Body.Close()
	if len(out.Jobs) != 2 || out.Jobs[0].ID != st.ID || out.Jobs[1].ID != st2.ID {
		t.Fatalf("job listing after restart = %+v, want restored job then new job", out.Jobs)
	}
}

// TestServerStateCancelledPersists: a job cancelled while queued is also
// persisted, so after a restart its status still reads cancelled and its
// result endpoint still answers 409.
func TestServerStateCancelledPersists(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{QueueDepth: 4, StateDir: dir}) // never Start()ed: job stays queued
	ts1 := httptest.NewServer(s1.Handler())
	st, _ := postJob(t, ts1, JobRequest{Experiment: "bounds",
		Config: rawConfig(t, experiments.BoundsConfig{Seed: 1, Duration: 3 * time.Minute})})
	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts1.Close()

	s2 := New(Options{QueueDepth: 4, StateDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	r2, err := http.Get(ts2.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(r2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if got.State != JobCancelled {
		t.Fatalf("restored state %s, want cancelled", got.State)
	}
	r3, err := http.Get(ts2.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusConflict {
		t.Fatalf("restored result status %d, want 409", r3.StatusCode)
	}
}
