package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gptpfta/internal/experiments"
	"gptpfta/internal/obs"
	"gptpfta/internal/runner"
	"gptpfta/internal/sim"
)

// Options configures a Server. The zero value selects sensible defaults;
// explicit -1 makes a bound unbounded where noted.
type Options struct {
	// Workers is the number of jobs executed concurrently (0: 2).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a full
	// queue rejects submissions with 503 (0: 16).
	QueueDepth int
	// PointParallel is the worker count of each job's point pool (0: 1).
	PointParallel int
	// CacheEntries bounds the warm-snapshot LRU by entry count (0: 8,
	// -1: unbounded).
	CacheEntries int
	// CacheBytes bounds the warm-snapshot LRU by estimated deep size
	// (0: unbounded).
	CacheBytes int64
	// MaxPoints caps a single job's fan-out (0: 64).
	MaxPoints int
	// DefaultTimeout bounds each job's execution when the request does not
	// set its own (0: no timeout).
	DefaultTimeout time.Duration
	// DisableWarm turns off warm-start snapshot sharing for jobs that do
	// not explicitly request it.
	DisableWarm bool
	// StateDir, when set, persists every job that reaches a terminal state
	// as a JSON envelope (status + wire results) under this directory, and
	// New loads the directory back so a restarted server still answers
	// GET /v1/jobs/{id} and GET /v1/jobs/{id}/result for finished jobs.
	// Unreadable files are skipped; job IDs continue past the highest
	// persisted one.
	StateDir string
}

// withDefaults resolves the zero-value conventions.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.PointParallel <= 0 {
		o.PointParallel = 1
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 8
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 64
	}
	return o
}

// Server queues experiment jobs, runs them on a fixed worker pool and keeps
// the shared warm-snapshot cache. It is the HTTP-independent core; Handler
// exposes it as an http.Handler.
type Server struct {
	opts  Options
	reg   *obs.Registry
	cache *SnapshotCache
	queue chan *job

	mu     sync.RWMutex
	jobs   map[string]*job
	order  []string // submission order, for GET /v1/jobs
	nextID int
	closed bool

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mSubmitted, mRejected                       *obs.Counter
	mStatePersisted, mStateLoaded, mStateErrors *obs.Counter
}

// New returns a stopped server; call Start to launch its workers. The
// server's own registry (snapshot-cache and queue counters) is served by
// the metrics endpoint of every job under the run tag "server".
func New(opts Options) *Server {
	opts = opts.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		opts:            opts,
		reg:             reg,
		cache:           NewSnapshotCache(reg, opts.CacheEntries, opts.CacheBytes),
		queue:           make(chan *job, opts.QueueDepth),
		jobs:            make(map[string]*job),
		mSubmitted:      reg.Counter("served_jobs_submitted"),
		mRejected:       reg.Counter("served_jobs_rejected"),
		mStatePersisted: reg.Counter("served_state_persisted"),
		mStateLoaded:    reg.Counter("served_state_loaded"),
		mStateErrors:    reg.Counter("served_state_errors"),
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.loadState()
	return s
}

// Cache exposes the shared snapshot cache (tests assert on its occupancy).
func (s *Server) Cache() *SnapshotCache { return s.cache }

// Metrics exposes the server-level registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.baseCtx.Done():
					return
				case j := <-s.queue:
					s.runJob(j)
				}
			}
		}()
	}
}

// Stop rejects further submissions, cancels running jobs (they finish as
// cancelled), waits for the workers to drain, and marks jobs still sitting
// in the queue cancelled so no job is left "queued" forever.
func (s *Server) Stop() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	// Workers are gone; anything still queued will never start. Submits
	// check closed and enqueue inside one s.mu critical section, so no
	// job can land in the queue after this drain.
	for {
		select {
		case j := <-s.queue:
			j.finish(JobCancelled, errors.New("server shutdown before the job started"), nil)
			s.persist(j)
		default:
			return
		}
	}
}

// submit registers and enqueues a job built from req.
func (s *Server) submit(req JobRequest) (*job, int, error) {
	exp, err := experiments.Lookup(req.Experiment)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	if req.Points <= 0 {
		req.Points = 1
	}
	if req.Points > s.opts.MaxPoints {
		return nil, http.StatusBadRequest,
			fmt.Errorf("points %d exceeds the server cap %d", req.Points, s.opts.MaxPoints)
	}
	if req.TimeoutNS < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("timeout_ns must be non-negative")
	}
	// Decode the config now so a malformed payload fails the submission,
	// not the queued job.
	if _, err := experiments.SeededConfig(exp, req.Seed, req.Config); err != nil {
		return nil, http.StatusBadRequest, err
	}

	timeout := s.opts.DefaultTimeout
	if req.TimeoutNS > 0 {
		timeout = time.Duration(req.TimeoutNS)
	}
	warm := !s.opts.DisableWarm
	if req.Warm != nil {
		warm = *req.Warm
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down")
	}
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%06d", s.nextID),
		req:     req,
		timeout: timeout,
		warm:    warm,
		state:   JobQueued,
		created: time.Now(),
	}
	// Enqueue while still holding s.mu (the default arm keeps this
	// non-blocking) so registration and enqueue are atomic: a failed send
	// never has to roll back state that concurrent submits built on.
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
		s.mSubmitted.Inc()
		return j, http.StatusAccepted, nil
	default:
		s.mu.Unlock()
		s.mRejected.Inc()
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("job queue is full (%d queued)", s.opts.QueueDepth)
	}
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one job on a worker: it fans the job's points across a
// per-job runner pool (panic isolation, deterministic outcome order) under
// a per-job cancellable/timeout context, routing warm-capable configs
// through the shared snapshot cache.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if j.timeout > 0 {
		// Chain the timeout onto the cancellable context so both cancel
		// funcs run (the outer one via the defer above) and neither
		// registration on baseCtx outlives the job.
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, j.timeout)
		defer cancelTimeout()
	}
	if !j.start(cancel) {
		return // cancelled while queued
	}

	exp, err := experiments.Lookup(j.req.Experiment)
	if err != nil {
		// Unreachable after submit-time validation, but a registry is
		// mutable in tests.
		j.finish(JobFailed, err, nil)
		s.persist(j)
		return
	}

	jobReg := obs.NewRegistry()
	runs := make([]runner.Run, j.req.Points)
	for i := range runs {
		name := fmt.Sprintf("point/%d", i)
		pointSeed := j.req.Seed
		if j.req.Points > 1 {
			pointSeed = sim.DeriveSeed(j.req.Seed, "served/"+name)
		}
		runs[i] = runner.Run{Name: name, Do: func(ctx context.Context) (any, error) {
			cfg, err := experiments.SeededConfig(exp, pointSeed, j.req.Config)
			if err != nil {
				return nil, err
			}
			if j.warm {
				cfg, _ = experiments.EnableWarmStart(cfg, jobReg, s.cache)
			}
			res, err := exp.Run(ctx, cfg)
			if err != nil {
				return nil, err
			}
			w := experiments.Wire(j.req.Experiment, res)
			j.addMetrics(name, w.Obs)
			return w, nil
		}}
	}

	outcomes := runner.New(s.opts.PointParallel).WithMetrics(jobReg).Execute(ctx, runs)
	j.addMetrics("job", jobReg.Snapshot())
	results, err := runner.Values[experiments.WireResult](outcomes)
	switch {
	case err == nil:
		j.finish(JobDone, nil, results)
	case errors.Is(err, context.Canceled) && !errors.Is(ctx.Err(), context.DeadlineExceeded):
		// Client cancellation and server shutdown both land here; only
		// timeouts fall through to failed.
		if s.baseCtx.Err() != nil {
			err = fmt.Errorf("server shutdown interrupted the job: %w", err)
		}
		j.finish(JobCancelled, err, nil)
	default:
		j.finish(JobFailed, err, nil)
	}
	s.persist(j)
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleMetrics)
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error body: {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// experimentInfo is one GET /v1/experiments entry.
type experimentInfo struct {
	Name          string          `json:"name"`
	Description   string          `json:"description"`
	Warm          bool            `json:"warm"`
	DefaultConfig json.RawMessage `json:"default_config"`
}

// handleExperiments lists the registry: name, description, warm-start
// capability and the default config at the requested seed (?seed=N,
// default 1) — the exact JSON a client can edit and POST back.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	seed := int64(1)
	if q := r.URL.Query().Get("seed"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q: %w", q, err))
			return
		}
		seed = v
	}
	list := make([]experimentInfo, 0)
	for _, e := range experiments.All() {
		cfg := e.DefaultConfig(seed)
		raw, err := json.Marshal(cfg)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		_, warm := experiments.EnableWarmStart(cfg, nil, nil)
		list = append(list, experimentInfo{
			Name:          e.Name(),
			Description:   e.Description(),
			Warm:          warm,
			DefaultConfig: raw,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": list})
}

// handleSubmit accepts a job: 202 with the job status on success, 404 with
// the registry's did-you-mean error for unknown experiments, 400 for a bad
// config, 503 when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, status, err := s.submit(req)
	if err != nil {
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, status, j.status())
}

// handleJobs lists every job in submission order.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.RUnlock()
	list := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		list = append(list, j.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

// handleStatus serves one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleCancel cancels a queued or running job (202), reports terminal jobs
// with 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is already %s", j.id, j.status().State))
		return
	}
	// A queued job is terminal right away; persist skips the running case
	// (the worker persists it when the run loop observes the cancel).
	s.persist(j)
	writeJSON(w, http.StatusAccepted, j.status())
}

// jobResults is the GET /v1/jobs/{id}/result body: the versioned wire
// envelope of every point, in point order.
type jobResults struct {
	ID         string                   `json:"id"`
	Experiment string                   `json:"experiment"`
	Points     int                      `json:"points"`
	Results    []experiments.WireResult `json:"results"`
}

// handleResult serves a finished job's results; non-done jobs answer 409
// with the current state.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	state, results := j.snapshotResults()
	if state != JobDone {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", j.id, state))
		return
	}
	writeJSON(w, http.StatusOK, jobResults{
		ID:         j.id,
		Experiment: j.req.Experiment,
		Points:     j.req.Points,
		Results:    results,
	})
}

// handleMetrics streams the job's obs snapshots as JSONL: one point block
// per completed point, the job-level runner block, and the server block
// (snapshot cache, queue counters). Available while the job is still
// running — completed points stream early.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, b := range j.snapshotMetrics() {
		if err := obs.WriteJSONL(w, b.run, b.metrics); err != nil {
			return
		}
	}
	_ = obs.WriteJSONL(w, "server", s.reg.Snapshot())
}
