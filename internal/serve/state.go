package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"gptpfta/internal/experiments"
)

// persistedJob is the on-disk envelope of one terminal job: the wire status
// plus, for done jobs, the versioned result envelopes — exactly what the
// status and result endpoints need to answer after a restart. Point metrics
// are not persisted; a restored job's metrics endpoint serves only the live
// server block.
type persistedJob struct {
	Status  JobStatus                `json:"status"`
	Results []experiments.WireResult `json:"results,omitempty"`
}

// stateFile is a job's path under the state directory.
func (s *Server) stateFile(id string) string {
	return filepath.Join(s.opts.StateDir, id+".json")
}

// persist writes a terminal job's envelope to the state directory via a
// temp-file rename, so a crash mid-write never leaves a truncated envelope
// for loadState to trip over. Non-terminal jobs and persistence errors are
// skipped (the latter counted on served_state_errors) — persistence is an
// availability feature, not a correctness gate.
func (s *Server) persist(j *job) {
	if s.opts.StateDir == "" {
		return
	}
	st := j.status()
	if !st.State.Terminal() {
		return
	}
	_, results := j.snapshotResults()
	raw, err := json.MarshalIndent(persistedJob{Status: st, Results: results}, "", "  ")
	if err != nil {
		s.mStateErrors.Inc()
		return
	}
	tmp, err := os.CreateTemp(s.opts.StateDir, j.id+".tmp-*")
	if err != nil {
		s.mStateErrors.Inc()
		return
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.mStateErrors.Inc()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.mStateErrors.Inc()
		return
	}
	if err := os.Rename(tmp.Name(), s.stateFile(j.id)); err != nil {
		os.Remove(tmp.Name())
		s.mStateErrors.Inc()
		return
	}
	s.mStatePersisted.Inc()
}

// loadState restores persisted terminal jobs into the jobs map so the
// status, listing and result endpoints keep answering for them across
// restarts, and advances nextID past the highest persisted id so new
// submissions never collide with a restored job. Unreadable or malformed
// files are skipped and counted; restored jobs are listed before this
// process's own submissions, in id order.
func (s *Server) loadState() {
	dir := s.opts.StateDir
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.mStateErrors.Inc()
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		s.mStateErrors.Inc()
		return
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			s.mStateErrors.Inc()
			continue
		}
		var pj persistedJob
		if err := json.Unmarshal(raw, &pj); err != nil {
			s.mStateErrors.Inc()
			continue
		}
		st := pj.Status
		if st.ID == "" || !st.State.Terminal() || st.ID != strings.TrimSuffix(name, ".json") {
			s.mStateErrors.Inc()
			continue
		}
		j := &job{
			id: st.ID,
			req: JobRequest{
				Experiment: st.Experiment,
				Seed:       st.Seed,
				Points:     st.Points,
			},
			state:   st.State,
			err:     st.Error,
			created: st.Created,
			results: pj.Results,
		}
		if st.Started != nil {
			j.started = *st.Started
		}
		if st.Finished != nil {
			j.finished = *st.Finished
		} else {
			// Terminal implies finished; a missing stamp would make the
			// restored status claim the job never ended.
			j.finished = time.Now()
		}
		s.jobs[j.id] = j
		ids = append(ids, j.id)
		if n, err := strconv.Atoi(strings.TrimPrefix(j.id, "job-")); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	sort.Strings(ids)
	s.order = append(s.order, ids...)
	s.mStateLoaded.Add(uint64(len(ids)))
}
