package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"gptpfta/internal/experiments"
	"gptpfta/internal/obs"
)

// JobState is a job's position in the queued → running → terminal
// lifecycle.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobRequest is the POST /v1/jobs payload. Config is overlaid onto the
// experiment's seeded defaults and decoded strictly — unknown fields are
// errors, durations travel as nanosecond integers. An explicit seed key
// inside Config wins over the top-level Seed.
type JobRequest struct {
	// Experiment is the registry name of the study to run.
	Experiment string `json:"experiment"`
	// Config partially or fully overrides the experiment's default config.
	Config json.RawMessage `json:"config,omitempty"`
	// Seed seeds the run; with Points > 1 it is the campaign seed that
	// per-point seeds derive from.
	Seed int64 `json:"seed,omitempty"`
	// Points fans the job out into this many runs with derived seeds
	// (default 1).
	Points int `json:"points,omitempty"`
	// Warm opts the job out of warm-start snapshot sharing when false;
	// omitted means the server default (on). Ignored for studies without a
	// warm mode.
	Warm *bool `json:"warm,omitempty"`
	// TimeoutNS bounds the job's wall-clock execution (0: the server
	// default).
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
}

// JobStatus is the wire form of a job's state, served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID         string     `json:"id"`
	Experiment string     `json:"experiment"`
	Seed       int64      `json:"seed"`
	Points     int        `json:"points"`
	State      JobState   `json:"state"`
	Error      string     `json:"error,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
}

// metricsBlock is one tagged obs snapshot, streamed as JSONL by the metrics
// endpoint in the order blocks were recorded.
type metricsBlock struct {
	run     string
	metrics []obs.Metric
}

// job is the server-side record of one submitted campaign.
type job struct {
	id      string
	req     JobRequest
	timeout time.Duration
	warm    bool

	mu       sync.Mutex
	state    JobState
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	results  []experiments.WireResult
	metrics  []metricsBlock
}

// status snapshots the job's wire status.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Experiment: j.req.Experiment,
		Seed:       j.req.Seed,
		Points:     j.req.Points,
		State:      j.state,
		Error:      j.err,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// start transitions queued → running and installs the cancel func. It
// returns false when the job was cancelled while queued — the worker must
// then skip it.
func (j *job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish records the terminal state. A job already cancelled stays
// cancelled.
func (j *job) finish(state JobState, err error, results []experiments.WireResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	if err != nil {
		j.err = err.Error()
	}
	j.results = results
	j.finished = time.Now()
	j.cancel = nil
}

// requestCancel cancels a queued or running job; terminal jobs are left
// alone. It reports whether the request changed anything.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == JobQueued:
		j.state = JobCancelled
		j.finished = time.Now()
		return true
	case j.state == JobRunning:
		// The run loop observes the context and records the terminal
		// state itself.
		if j.cancel != nil {
			j.cancel()
		}
		return true
	default:
		return false
	}
}

// addMetrics appends one tagged snapshot to the job's metrics log.
func (j *job) addMetrics(run string, metrics []obs.Metric) {
	if len(metrics) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.metrics = append(j.metrics, metricsBlock{run: run, metrics: metrics})
}

// snapshotResults returns the job's state and, when done, its results.
func (j *job) snapshotResults() (JobState, []experiments.WireResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.results
}

// snapshotMetrics returns the metrics blocks recorded so far; for running
// jobs this streams completed points.
func (j *job) snapshotMetrics() []metricsBlock {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]metricsBlock, len(j.metrics))
	copy(out, j.metrics)
	return out
}
