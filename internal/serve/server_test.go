package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gptpfta/internal/experiments"
	"gptpfta/internal/obs"
)

// testServer boots a started server plus its HTTP front.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Stop()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode job status: %v", err)
		}
	}
	return st, resp
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			if st.State != JobDone {
				t.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
			}
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

func fetchResults(t *testing.T, ts *httptest.Server, id string) []experiments.WireResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("result status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []experiments.WireResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Results
}

// stableSurface strips the obs snapshots from a result set and marshals
// what remains — the schema/summary/rows surface the determinism gate
// guarantees.
func stableSurface(t *testing.T, results []experiments.WireResult) []byte {
	t.Helper()
	trimmed := make([]experiments.WireResult, len(results))
	for i, r := range results {
		r.Obs = nil
		trimmed[i] = r
	}
	raw, err := json.Marshal(trimmed)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func rawConfig(t *testing.T, cfg any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestServerEveryExperiment is the tentpole acceptance check: every
// registered experiment runs end-to-end through POST /v1/jobs with a JSON
// config, finishes done, and serves a schema-1 result envelope plus a
// non-empty metrics stream.
func TestServerEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep through the job server")
	}
	_, ts := testServer(t, Options{Workers: 4})

	min := time.Minute
	configs := map[string]any{
		"baseline":      experiments.BaselineConfig{Seed: 7, Duration: 10 * min},
		"single-domain": experiments.BaselineConfig{Seed: 7, Duration: 10 * min},
		"flag-policy":   experiments.BaselineConfig{Seed: 7, Duration: 10 * min},
		"bmca":          experiments.BMCAReconvergenceConfig{Seed: 7, AnnounceInterval: 250 * time.Millisecond},
		"bounds":        experiments.BoundsConfig{Seed: 7, Duration: 3 * min},
		"domains":       experiments.DomainSweepConfig{Seed: 7, Counts: []int{2, 4}, Duration: 8 * min, Parallel: 1},
		"dynamic":       experiments.DynamicMeshConfig{Seed: 7},
		"faultinjection": experiments.FaultInjectionConfig{
			Seed: 7, Duration: 8 * min, GMPeriod: 2 * min,
			RedundantMinPerHour: 6, RedundantMaxPerHour: 12, Downtime: 30 * time.Second,
		},
		"interval": experiments.IntervalSweepConfig{
			Seed: 7, Intervals: []time.Duration{125 * time.Millisecond, 250 * time.Millisecond},
			Duration: 3 * min, Parallel: 1,
		},
		"multiseed": experiments.MultiSeedConfig{Seeds: []int64{5, 6}, Duration: 6 * min, Parallel: 1},
		"netchaos": experiments.NetworkChaosConfig{
			Seed: 7, Duration: 4*min + 30*time.Second,
			BurstBadLoss: []float64{0.5}, PartitionDurations: []time.Duration{10 * time.Second}, Parallel: 1,
		},
		"attacks": experiments.AttacksConfig{
			Seed: 7, Duration: 3 * min, AttackStart: min,
			ByzantineCounts: []int{2}, Delays: []time.Duration{24 * time.Microsecond},
			Diversity: []string{"identical"}, Parallel: 1,
		},
		"onestep":    experiments.OneStepStudyConfig{Seed: 7},
		"recovery":   experiments.RecoveryConfig{Seed: 7, Duration: 40 * min},
		"resilience": experiments.CyberResilienceConfig{Seed: 7, Duration: 8 * min},
		"tas":        experiments.TASStudyConfig{Seed: 7},
		"voting":     experiments.VotingConfig{Seed: 7},
		"wansites": experiments.WanSitesConfig{
			Seed: 7, Duration: 40 * time.Second, FaultStart: 15 * time.Second,
			FaultDuration: 10 * time.Second, SiteCounts: []int{4},
			FailedSites: []int{2}, Asyms: []time.Duration{0}, Parallel: 1,
		},
	}
	for _, name := range experiments.Names() {
		if _, ok := configs[name]; !ok {
			t.Fatalf("no job-server test config for registered experiment %q", name)
		}
	}

	ids := make(map[string]string, len(configs))
	for _, name := range experiments.Names() {
		st, resp := postJob(t, ts, JobRequest{Experiment: name, Config: rawConfig(t, configs[name])})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: submit status %d", name, resp.StatusCode)
		}
		ids[name] = st.ID
	}
	for _, name := range experiments.Names() {
		waitDone(t, ts, ids[name])
		results := fetchResults(t, ts, ids[name])
		if len(results) != 1 {
			t.Fatalf("%s: %d results, want 1", name, len(results))
		}
		w := results[0]
		if w.Schema != experiments.ResultSchemaVersion || w.Experiment != name || w.Summary == "" || len(w.Rows) < 2 {
			t.Fatalf("%s: bad envelope: schema=%d experiment=%q summary=%q rows=%d",
				name, w.Schema, w.Experiment, w.Summary, len(w.Rows))
		}

		resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[name] + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		records, err := obs.ReadJSONL(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: metrics JSONL: %v", name, err)
		}
		if len(records) == 0 {
			t.Fatalf("%s: empty metrics stream", name)
		}
	}
}

// TestServerWarmSharing is the cache acceptance criterion: two concurrent
// jobs sharing a convergence prefix trigger exactly one prefix run, and
// their results are identical to each other and to a cold (warm-disabled)
// run of the same config.
func TestServerWarmSharing(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 2})
	cfg := rawConfig(t, experiments.BoundsConfig{Seed: 3, Duration: 4 * time.Minute})

	a, _ := postJob(t, ts, JobRequest{Experiment: "bounds", Config: cfg})
	b, _ := postJob(t, ts, JobRequest{Experiment: "bounds", Config: cfg})
	waitDone(t, ts, a.ID)
	waitDone(t, ts, b.ID)

	reg := s.Metrics()
	if misses := counterValue(reg, "snapcache_misses"); misses != 1 {
		t.Fatalf("snapcache_misses = %v, want 1 (single prefix convergence)", misses)
	}
	if hits := counterValue(reg, "snapcache_hits"); hits < 1 {
		t.Fatalf("snapcache_hits = %v, want >= 1", hits)
	}

	cold := false
	c, _ := postJob(t, ts, JobRequest{Experiment: "bounds", Config: cfg, Warm: &cold})
	waitDone(t, ts, c.ID)

	ra, rb, rc := fetchResults(t, ts, a.ID), fetchResults(t, ts, b.ID), fetchResults(t, ts, c.ID)
	// Identity covers the deterministic result surface — the same rows the
	// golden digests hash. Obs gauges (e.g. allocator pool hit rates)
	// measure process state, not simulation state, and are exempt by
	// design.
	ja, jb, jc := stableSurface(t, ra), stableSurface(t, rb), stableSurface(t, rc)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("warm twins diverge:\n%s\n%s", ja, jb)
	}
	if !bytes.Equal(ja, jc) {
		t.Fatalf("warm result differs from cold:\nwarm: %s\ncold: %s", ja, jc)
	}
	if s.Cache().Len() == 0 {
		t.Fatal("snapshot cache empty after warm jobs")
	}
}

// TestServerDistinctPrefixesDontShare: different seeds hash to different
// prefixes, so nothing is shared — each job converges its own prefix (cold
// for the cache) and both still finish.
func TestServerDistinctPrefixesDontShare(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 2})
	a, _ := postJob(t, ts, JobRequest{Experiment: "bounds",
		Config: rawConfig(t, experiments.BoundsConfig{Seed: 3, Duration: 4 * time.Minute})})
	b, _ := postJob(t, ts, JobRequest{Experiment: "bounds",
		Config: rawConfig(t, experiments.BoundsConfig{Seed: 4, Duration: 4 * time.Minute})})
	waitDone(t, ts, a.ID)
	waitDone(t, ts, b.ID)
	reg := s.Metrics()
	if misses := counterValue(reg, "snapcache_misses"); misses != 2 {
		t.Fatalf("snapcache_misses = %v, want 2", misses)
	}
	if hits := counterValue(reg, "snapcache_hits"); hits != 0 {
		t.Fatalf("snapcache_hits = %v, want 0", hits)
	}
}

// TestServerMultiPoint: points > 1 fans out derived seeds; every point gets
// its own envelope.
func TestServerMultiPoint(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1, PointParallel: 2})
	st, _ := postJob(t, ts, JobRequest{
		Experiment: "bounds",
		Seed:       11,
		Points:     2,
		Config:     json.RawMessage(`{"duration": 180000000000}`),
	})
	waitDone(t, ts, st.ID)
	results := fetchResults(t, ts, st.ID)
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	if results[0].Summary == results[1].Summary {
		t.Fatalf("derived-seed points produced identical summaries: %s", results[0].Summary)
	}
}

// TestServerUnknownExperiment: the 404 body carries the registry's
// did-you-mean error.
func TestServerUnknownExperiment(t *testing.T) {
	_, ts := testServer(t, Options{})
	_, resp := postJob(t, ts, JobRequest{Experiment: "intervl"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "intervl"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if !strings.Contains(string(body), `did you mean \"interval\"?`) {
		t.Fatalf("404 body lacks suggestion: %s", body)
	}
}

// TestServerBadConfig: strict decode surfaces as 400 at submission time.
func TestServerBadConfig(t *testing.T) {
	_, ts := testServer(t, Options{})
	_, resp := postJob(t, ts, JobRequest{
		Experiment: "bounds",
		Config:     json.RawMessage(`{"no_such_knob": true}`),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	_, resp = postJob(t, ts, JobRequest{
		Experiment: "bounds",
		Config:     json.RawMessage(`{"duration": -5}`),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation status %d, want 400", resp.StatusCode)
	}
}

// TestServerQueueFull: with no workers draining, the bounded queue rejects
// overflow with 503.
func TestServerQueueFull(t *testing.T) {
	s := New(Options{QueueDepth: 1}) // never Start()ed: nothing drains
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cfg := rawConfig(t, experiments.BoundsConfig{Seed: 1, Duration: 3 * time.Minute})
	_, resp := postJob(t, ts, JobRequest{Experiment: "bounds", Config: cfg})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	_, resp = postJob(t, ts, JobRequest{Experiment: "bounds", Config: cfg})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status %d, want 503", resp.StatusCode)
	}
}

// TestServerCancelQueued: a queued job can be cancelled; its result answers
// 409.
func TestServerCancelQueued(t *testing.T) {
	s := New(Options{QueueDepth: 4}) // never Start()ed: job stays queued
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, _ := postJob(t, ts, JobRequest{Experiment: "bounds",
		Config: rawConfig(t, experiments.BoundsConfig{Seed: 1, Duration: 3 * time.Minute})})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	r2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(r2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if got.State != JobCancelled {
		t.Fatalf("state %s, want cancelled", got.State)
	}
	r3, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusConflict {
		t.Fatalf("result status %d, want 409", r3.StatusCode)
	}
}

// TestServerExperimentListing: the registry listing serves every experiment
// with a decodable default config and its warm capability.
func TestServerExperimentListing(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/experiments?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Experiments []struct {
			Name          string          `json:"name"`
			Description   string          `json:"description"`
			Warm          bool            `json:"warm"`
			DefaultConfig json.RawMessage `json:"default_config"`
		} `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Experiments) != len(experiments.Names()) {
		t.Fatalf("%d experiments listed, want %d", len(out.Experiments), len(experiments.Names()))
	}
	warmCount := 0
	for _, e := range out.Experiments {
		exp, err := experiments.Lookup(e.Name)
		if err != nil {
			t.Fatalf("listed unknown experiment %q", e.Name)
		}
		if e.Description == "" {
			t.Fatalf("%s: empty description", e.Name)
		}
		// The listed default config must POST back cleanly.
		if _, err := exp.DecodeConfig(e.DefaultConfig); err != nil {
			t.Fatalf("%s: listed default config does not decode: %v", e.Name, err)
		}
		if e.Warm {
			warmCount++
		}
	}
	if warmCount != 5 {
		t.Fatalf("%d warm-capable experiments, want 5 (bounds, faultinjection, interval, domains, netchaos)", warmCount)
	}
}

// TestServerQueueFullConcurrentSubmits hammers a full queue from many
// goroutines: rejected submissions must not corrupt the job list (a former
// rollback race truncated the wrong order entry, leaving nil jobs that
// panicked GET /v1/jobs).
func TestServerQueueFullConcurrentSubmits(t *testing.T) {
	s := New(Options{QueueDepth: 2}) // never Start()ed: nothing drains
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := func() []byte {
		raw, err := json.Marshal(JobRequest{Experiment: "bounds",
			Config: rawConfig(t, experiments.BoundsConfig{Seed: 1, Duration: 3 * time.Minute})})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}()

	var wg sync.WaitGroup
	var accepted atomic.Int32
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				accepted.Add(1)
			case http.StatusServiceUnavailable:
			default:
				errs <- fmt.Errorf("unexpected submit status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := accepted.Load(); got != 2 {
		t.Fatalf("%d submissions accepted, want 2 (queue depth)", got)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 2 {
		t.Fatalf("%d jobs listed, want 2", len(out.Jobs))
	}
	for _, j := range out.Jobs {
		if j.State != JobQueued {
			t.Fatalf("job %s listed %s, want queued", j.ID, j.State)
		}
	}
}

// TestServerStopCancelsQueued: Stop marks jobs that never left the queue
// cancelled instead of stranding them "queued" forever.
func TestServerStopCancelsQueued(t *testing.T) {
	s := New(Options{QueueDepth: 4}) // never Start()ed: job stays queued
	j, _, err := s.submit(JobRequest{Experiment: "bounds",
		Config: rawConfig(t, experiments.BoundsConfig{Seed: 1, Duration: 3 * time.Minute})})
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	st := j.status()
	if st.State != JobCancelled {
		t.Fatalf("queued job finished %s after Stop, want cancelled", st.State)
	}
	if !strings.Contains(st.Error, "shutdown") {
		t.Fatalf("queued job error %q does not mention shutdown", st.Error)
	}
}

// TestServerStopCancelsRunning: a job interrupted mid-run by Stop finishes
// cancelled (with a shutdown error), not failed.
func TestServerStopCancelsRunning(t *testing.T) {
	s := New(Options{Workers: 1})
	s.Start()
	j, _, err := s.submit(JobRequest{Experiment: "bounds", Points: 32,
		Config: rawConfig(t, experiments.BoundsConfig{Seed: 1, Duration: 3 * time.Minute})})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.status().State == JobQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	st := j.status()
	if st.State != JobCancelled {
		t.Fatalf("running job finished %s after Stop (err %q), want cancelled", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "shutdown") {
		t.Fatalf("running job error %q does not mention shutdown", st.Error)
	}
}
