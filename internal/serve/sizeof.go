// Deep size estimation for cached snapshots. A converged System snapshot is
// an arbitrary object graph (scheduler slab, component structs, queued
// frames, closures), so the cache's byte bound walks it reflectively and
// sums what the graph plausibly pins in memory. The estimate is approximate
// by design — interior pointers, allocator slack and closure captures are
// invisible to reflection — but it is stable for a given snapshot shape,
// which is all an eviction bound needs.
package serve

import "reflect"

// deepSize estimates the bytes reachable from v: the value itself plus
// everything its pointers, slices, maps, strings and interfaces reference.
// Shared referents (the same pointer, backing array or map reached twice)
// are counted once, and cycles terminate. Channels and funcs count as their
// header word only — their referents are not reachable via reflection.
func deepSize(v any) int64 {
	if v == nil {
		return 0
	}
	rv := reflect.ValueOf(v)
	seen := make(map[uintptr]struct{})
	return int64(rv.Type().Size()) + referenced(rv, seen)
}

// referenced returns the bytes v points at beyond its own inline size.
func referenced(v reflect.Value, seen map[uintptr]struct{}) int64 {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() || visited(v.Pointer(), seen) {
			return 0
		}
		e := v.Elem()
		return int64(e.Type().Size()) + referenced(e, seen)

	case reflect.Interface:
		if v.IsNil() {
			return 0
		}
		e := v.Elem()
		if e.Kind() == reflect.Pointer {
			// The interface data word holds the pointer itself.
			return referenced(e, seen)
		}
		// Non-pointer values are boxed behind the data word.
		return int64(e.Type().Size()) + referenced(e, seen)

	case reflect.Slice:
		if v.IsNil() || visited(v.Pointer(), seen) {
			return 0
		}
		n := int64(v.Cap()) * int64(v.Type().Elem().Size())
		if hasRefs(v.Type().Elem()) {
			for i := 0; i < v.Len(); i++ {
				n += referenced(v.Index(i), seen)
			}
		}
		return n

	case reflect.Array:
		var n int64
		if hasRefs(v.Type().Elem()) {
			for i := 0; i < v.Len(); i++ {
				n += referenced(v.Index(i), seen)
			}
		}
		return n

	case reflect.String:
		return int64(v.Len())

	case reflect.Map:
		if v.IsNil() || visited(v.Pointer(), seen) {
			return 0
		}
		// Bucket overhead is opaque; approximate each entry as its key and
		// value sizes plus two words of bucket bookkeeping.
		entry := int64(v.Type().Key().Size()) + int64(v.Type().Elem().Size()) + 16
		n := int64(v.Len()) * entry
		if hasRefs(v.Type().Key()) || hasRefs(v.Type().Elem()) {
			iter := v.MapRange()
			for iter.Next() {
				n += referenced(iter.Key(), seen)
				n += referenced(iter.Value(), seen)
			}
		}
		return n

	case reflect.Struct:
		var n int64
		for i := 0; i < v.NumField(); i++ {
			n += referenced(v.Field(i), seen)
		}
		return n

	default:
		// Scalars are inline; chans and funcs stop the walk.
		return 0
	}
}

// visited records p in seen and reports whether it was already there.
func visited(p uintptr, seen map[uintptr]struct{}) bool {
	if p == 0 {
		return true
	}
	if _, ok := seen[p]; ok {
		return true
	}
	seen[p] = struct{}{}
	return false
}

// hasRefs reports whether values of type t can reference further memory —
// the element-walk gate that keeps deepSize from visiting every float64 in
// a large numeric slice.
func hasRefs(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return false
	case reflect.Array:
		return hasRefs(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasRefs(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}
