// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index) plus microbenchmarks of
// the core algorithms. The figure benchmarks run time-compressed instances
// of the full experiments and report the paper-relevant quantities as
// custom metrics (ns-of-precision, violation counts), so `go test -bench`
// regenerates every row/series shape the paper reports.
package main

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/core"
	"gptpfta/internal/experiments"
	"gptpfta/internal/fta"
	"gptpfta/internal/measure"
	"gptpfta/internal/netsim"
	"gptpfta/internal/obs"
	"gptpfta/internal/servo"
	"gptpfta/internal/sim"
)

// BenchmarkBoundsMethodology — E1: the §III-A3/§III-B numbers
// (d_min, d_max, E, Γ, Π, γ).
func BenchmarkBoundsMethodology(b *testing.B) {
	var last *experiments.BoundsResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Bounds(experiments.BoundsConfig{
			Seed:     int64(i + 1),
			Duration: 3 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.ReadingError.Nanoseconds()), "E-ns")
	b.ReportMetric(float64(last.Bound.Nanoseconds()), "Pi-ns")
	b.ReportMetric(float64(last.Gamma.Nanoseconds()), "gamma-ns")
}

// BenchmarkFig3aIdenticalKernels — E2: both exploits succeed; the bound is
// violated after the second compromise.
func BenchmarkFig3aIdenticalKernels(b *testing.B) {
	var last *experiments.CyberResilienceResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.CyberResilience(experiments.CyberResilienceConfig{
			Seed:     int64(i + 1),
			Duration: 10 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.BoundViolatedAfterSecondAttack() {
			b.Fatalf("Fig. 3a shape lost: %s", res.Summary())
		}
		last = res
	}
	b.ReportMetric(float64(last.ViolationsAfterSecond), "violations")
	b.ReportMetric(last.MaxAfterSecondNS, "max-after-ns")
	b.ReportMetric(float64(last.Bound.Nanoseconds()), "Pi-ns")
}

// BenchmarkFig3bDiverseKernels — E3: the second exploit fails; the bound
// holds throughout.
func BenchmarkFig3bDiverseKernels(b *testing.B) {
	var last *experiments.CyberResilienceResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.CyberResilience(experiments.CyberResilienceConfig{
			Seed:           int64(i + 1),
			Duration:       10 * time.Minute,
			DiverseKernels: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.BoundViolatedAfterSecondAttack() {
			b.Fatalf("Fig. 3b shape lost: %s", res.Summary())
		}
		last = res
	}
	b.ReportMetric(float64(last.ViolationsAfterSecond), "violations")
	b.ReportMetric(float64(last.Bound.Nanoseconds()), "Pi-ns")
}

// BenchmarkFig4aFaultInjection — E4: the precision series stays within
// Π+γ under grandmaster and redundant-VM fail-silent faults.
func BenchmarkFig4aFaultInjection(b *testing.B) {
	var last *experiments.FaultInjectionResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultInjection(experiments.FaultInjectionConfig{
			Seed:                int64(i + 1),
			Duration:            20 * time.Minute,
			GMPeriod:            5 * time.Minute,
			RedundantMinPerHour: 6,
			RedundantMaxPerHour: 12,
			Downtime:            30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Stats.MeanNS, "avg-ns")
	b.ReportMetric(last.Stats.MaxNS, "max-ns")
	b.ReportMetric(float64(last.Violations), "violations")
	b.ReportMetric(float64(last.Injection.TotalFailures), "vm-failures")
}

// BenchmarkFig4bDistribution — E5: the right-skewed sub-µs distribution
// (the paper: avg 322 ns, std 421 ns, min 33 ns, max 10.08 µs).
func BenchmarkFig4bDistribution(b *testing.B) {
	var stats measure.Stats
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultInjection(experiments.FaultInjectionConfig{
			Seed:                int64(i + 1),
			Duration:            15 * time.Minute,
			GMPeriod:            5 * time.Minute,
			RedundantMinPerHour: 4,
			RedundantMaxPerHour: 8,
			Downtime:            30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		stats = res.Stats
	}
	b.ReportMetric(stats.MeanNS, "avg-ns")
	b.ReportMetric(stats.StdNS, "std-ns")
	b.ReportMetric(stats.MinNS, "min-ns")
	b.ReportMetric(stats.MaxNS, "max-ns")
}

// BenchmarkFig5EventWindow — E6: event extraction around the maximum
// spike, correlating VM failures, takeovers and ptp4l transient faults.
func BenchmarkFig5EventWindow(b *testing.B) {
	res, err := experiments.FaultInjection(experiments.FaultInjectionConfig{
		Seed:                1,
		Duration:            20 * time.Minute,
		GMPeriod:            5 * time.Minute,
		RedundantMinPerHour: 6,
		RedundantMaxPerHour: 12,
		Downtime:            30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events int
	for i := 0; i < b.N; i++ {
		w := res.Fig5Window(10 * time.Minute)
		events = len(w.Events)
	}
	b.ReportMetric(float64(events), "events")
	b.ReportMetric(float64(res.TxTimestampTimeouts), "tx-timeouts")
	b.ReportMetric(float64(res.DeadlineMisses), "deadline-misses")
}

// BenchmarkBaselineNoStartupSync — A1: the Kyriakakis-style baseline
// (clients-only aggregation, no initial GM synchronization) versus ours.
func BenchmarkBaselineNoStartupSync(b *testing.B) {
	var last *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.BaselineNoStartupSync(experiments.BaselineConfig{
			Seed:     int64(i + 1),
			Duration: 8 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.OursStats.MeanNS, "ours-avg-ns")
	b.ReportMetric(last.VariantStats.MeanNS, "baseline-avg-ns")
}

// BenchmarkAblationSingleDomainVsFTA — A2: plain single-domain gPTP versus
// the multi-domain FTA under one Byzantine grandmaster.
func BenchmarkAblationSingleDomainVsFTA(b *testing.B) {
	var last *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSingleDomainVsFTA(experiments.BaselineConfig{
			Seed:     int64(i + 1),
			Duration: 8 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.OursStats.MeanNS, "fta-avg-ns")
	b.ReportMetric(last.VariantStats.MeanNS, "single-avg-ns")
	b.ReportMetric(float64(last.VariantViolations), "single-violations")
}

// BenchmarkAblationFlagPolicy — A3: FTSHMEM validity-flag policy sweep.
func BenchmarkAblationFlagPolicy(b *testing.B) {
	var last *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationFlagPolicy(experiments.BaselineConfig{
			Seed:     int64(i + 1),
			Duration: 6 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.OursStats.MeanNS, "monitor-avg-ns")
	b.ReportMetric(last.VariantStats.MeanNS, "exclude-avg-ns")
}

// --- microbenchmarks of the hot algorithms ---

// BenchmarkFTAAggregate measures one FTSHMEM aggregation step (sort, drop,
// average, flags) at the paper's M = 4.
func BenchmarkFTAAggregate(b *testing.B) {
	readings := []fta.Reading{
		{Domain: 0, OffsetNS: 120, Fresh: true},
		{Domain: 1, OffsetNS: -80, Fresh: true},
		{Domain: 2, OffsetNS: 40, Fresh: true},
		{Domain: 3, OffsetNS: -24000, Fresh: true},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := fta.Aggregate(readings, 1, 10000, fta.FlagMonitor); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServoSample measures one PI controller update.
func BenchmarkServoSample(b *testing.B) {
	pi := servo.NewPI(servo.Config{SyncInterval: 125 * time.Millisecond})
	pi.Sample(100, 0)
	pi.Sample(90, 125e6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pi.Sample(float64(i%64), float64(i)*125e6)
	}
}

// BenchmarkSchedulerThroughput measures raw discrete-event throughput.
func BenchmarkSchedulerThroughput(b *testing.B) {
	s := sim.NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Nanosecond, func() {})
		if s.Pending() > 1024 {
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulerCancelHeavy exercises the O(1) lazy-cancellation path:
// every iteration schedules a batch of timers and cancels most of them
// before draining, the dominant pattern of protocol timeout timers that are
// armed per message and almost always cancelled.
func BenchmarkSchedulerCancelHeavy(b *testing.B) {
	s := sim.NewScheduler()
	var ids [64]sim.EventID
	fired := 0
	cb := func() { fired++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range ids {
			ids[j] = s.After(time.Duration(j+1)*time.Microsecond, cb)
		}
		for j := range ids {
			if j%8 != 0 { // cancel 7 of every 8, as timeout timers are
				s.Cancel(ids[j])
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	if fired == 0 {
		b.Fatal("no events fired")
	}
}

// BenchmarkNetsimFrameBurst measures the pooled frame path end to end:
// NIC → link → bridge (residence + static route) → link → NIC, one
// multicast fan-out per iteration. Steady-state allocations come only from
// the payload; frames and delivery events are recycled.
func BenchmarkNetsimFrameBurst(b *testing.B) {
	sched := sim.NewScheduler()
	streams := sim.NewStreams(7)
	osc := func(name string) *clock.PHC {
		o := clock.NewOscillator(clock.OscillatorConfig{}, nil, 0)
		return clock.NewPHC(sched, o, nil, clock.PHCConfig{})
	}
	br := netsim.NewBridge("sw", sched, streams.Stream("br"), osc("sw"),
		netsim.BridgeConfig{Ports: 3, Residence: map[int]netsim.ResidenceModel{
			netsim.PriorityBestEffort: {Base: 2 * time.Microsecond},
		}})
	nics := make([]*netsim.NIC, 3)
	lc := netsim.LinkConfig{Propagation: 500 * time.Nanosecond}
	for i := range nics {
		nics[i] = netsim.NewNIC(fmt.Sprintf("dev%d", i), sched, osc(fmt.Sprintf("dev%d", i)))
		if _, err := netsim.Connect(sched, nil, lc, nics[i].Port(), br.Port(i)); err != nil {
			b.Fatal(err)
		}
		br.AddGroupMember("mc/burst", i)
		nics[i].SetHandler(func(*netsim.Frame, float64) {})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := netsim.GetFrame()
		f.Src = "nic/dev0"
		f.Dst = "mc/burst"
		if _, err := nics[0].Send(f); err != nil {
			b.Fatal(err)
		}
		if err := sched.Run(); err != nil {
			b.Fatal(err)
		}
	}
	if _, rx := nics[1].Counters(); rx == 0 {
		b.Fatal("no frames delivered")
	}
}

// BenchmarkSystemSimulationRate measures full-testbed simulation speed in
// simulated-seconds per wall-second (reported as ns/op per simulated
// minute).
func BenchmarkSystemSimulationRate(b *testing.B) {
	sys, err := core.NewSystem(core.NewConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		b.Fatal(err)
	}
	if err := sys.RunFor(time.Minute); err != nil { // converge first
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.RunFor(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sys.Scheduler().Processed())/float64(b.N), "events/op")
}

// BenchmarkAblationBMCAReelection — A4: the BMCA's grandmaster re-election
// gap, which the paper's static external port configuration + FTA design
// eliminates.
func BenchmarkAblationBMCAReelection(b *testing.B) {
	var last *experiments.BMCAReconvergenceResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.BMCAReconvergence(experiments.BMCAReconvergenceConfig{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.ReelectionGap.Milliseconds()), "gap-ms")
	b.ReportMetric(float64(last.InitialElection.Milliseconds()), "election-ms")
}

// BenchmarkAblationVotingMonitor — A5: the 2f+1 fail-consistent variant of
// §II-A (monitor consistency voting vs freshness-only detection).
func BenchmarkAblationVotingMonitor(b *testing.B) {
	var last *experiments.VotingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.VotingFailover(experiments.VotingConfig{
			Seed:    int64(i + 1),
			Settle:  90 * time.Second,
			Observe: 45 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.VotingDetection.Milliseconds()), "detect-ms")
	b.ReportMetric(last.WithVotingErrIntegral, "voting-err-ns-s")
	b.ReportMetric(last.WithoutVotingErrIntegral, "freshness-err-ns-s")
}

// BenchmarkFutureWorkUnikernelRecovery — A6: the §IV future-work study
// (GNU/Linux vs unikernel reboot time → redundancy exposure).
func BenchmarkFutureWorkUnikernelRecovery(b *testing.B) {
	var last *experiments.RecoveryResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RecoveryComparison(context.Background(), experiments.RecoveryConfig{
			Seed:     int64(i + 1),
			Duration: 30 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Linux.DegradedSeconds, "linux-degraded-s")
	b.ReportMetric(last.Unikernel.DegradedSeconds, "unikernel-degraded-s")
}

// BenchmarkSweepSyncInterval — A7: the Γ = 2·r_max·S trade-off table.
func BenchmarkSweepSyncInterval(b *testing.B) {
	var points []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		res, err := experiments.IntervalSweep(context.Background(), experiments.IntervalSweepConfig{
			Seed:      int64(i + 1),
			Intervals: []time.Duration{62500 * time.Microsecond, 250 * time.Millisecond},
			Duration:  4 * time.Minute,
			Parallel:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
		points = res.Points
	}
	b.ReportMetric(points[0].BoundNS, "bound-fast-ns")
	b.ReportMetric(points[len(points)-1].BoundNS, "bound-slow-ns")
}

// BenchmarkSweepDomainCount — A8: Byzantine masking vs the number of
// domains (N >= 2f+1 required).
func BenchmarkSweepDomainCount(b *testing.B) {
	var points []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		res, err := experiments.DomainSweep(context.Background(), experiments.DomainSweepConfig{
			Seed:     int64(i + 1),
			Counts:   []int{2, 4},
			Duration: 6 * time.Minute,
			Parallel: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		points = res.Points
	}
	b.ReportMetric(float64(points[0].Violations), "m2-violations")
	b.ReportMetric(float64(points[1].Violations), "m4-violations")
}

// BenchmarkAblationTASProtection — A9: commodity FIFO egress vs the
// integrated TSN switch's 802.1Qbv + preemption under best-effort bursts —
// where the reading error E comes from.
func BenchmarkAblationTASProtection(b *testing.B) {
	var last *experiments.TASStudyResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.TASStudy(experiments.TASStudyConfig{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.FIFO.Spread.Nanoseconds()), "fifo-spread-ns")
	b.ReportMetric(float64(last.Protected.Spread.Nanoseconds()), "tsn-spread-ns")
}

// BenchmarkMultiSeedRobustness — the headline result re-run across seeds:
// the reproduction must not be a single-seed accident.
func BenchmarkMultiSeedRobustness(b *testing.B) {
	var last *experiments.MultiSeedResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiSeedValidation(context.Background(), experiments.MultiSeedConfig{
			Seeds:    []int64{int64(3*i + 1), int64(3*i + 2), int64(3*i + 3)},
			Duration: 10 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MeanOfMeansNS, "mean-ns")
	b.ReportMetric(last.StdOfMeansNS, "std-across-seeds-ns")
	b.ReportMetric(float64(last.AnyViolations), "violations")
}

// benchCampaign runs the 4-seed fault-injection campaign through the
// runner at the given worker count. On a multi-core host the parallel
// variant finishes in roughly 1/min(4, cores) of the sequential
// wall-clock; on a single-core host the two coincide.
func benchCampaign(b *testing.B, parallel int) {
	var last *experiments.MultiSeedResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiSeedValidation(context.Background(), experiments.MultiSeedConfig{
			Seeds:    []int64{1, 2, 3, 4},
			Duration: 8 * time.Minute,
			Parallel: parallel,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MeanOfMeansNS, "mean-ns")
	b.ReportMetric(float64(last.AnyViolations), "violations")
}

// BenchmarkCampaign4SeedsSequential — the 4-seed campaign on one worker:
// the wall-clock baseline for the runner's speedup claim.
func BenchmarkCampaign4SeedsSequential(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaign4SeedsParallel4 — the same campaign fanned across four
// workers. Compare ns/op against the sequential variant; results are
// bit-identical (the runner derives each run's streams from its seed and
// orders outcomes by submission index).
func BenchmarkCampaign4SeedsParallel4(b *testing.B) { benchCampaign(b, 4) }

// benchChaosSweep runs the network-chaos sweep that the warm-start
// benchmark pair compares: six plans (three burst intensities, three
// partition durations) whose divergent tails (95 s each) are short against
// the shared 265 s convergence prefix — the regime the copy-on-fork
// snapshot engine is built for. Cold mode pays the prefix six times; warm
// mode pays it once and forks. The tables are bit-identical either way
// (see TestForkEquivalenceNetworkChaos), so ns/op is the only difference.
func benchChaosSweep(b *testing.B, warm bool) {
	reg := obs.NewRegistry()
	var last *experiments.NetworkChaosResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.NetworkChaos(context.Background(), experiments.NetworkChaosConfig{
			Seed:               int64(i + 1),
			Duration:           6 * time.Minute,
			ChaosStart:         4*time.Minute + 30*time.Second,
			BurstBadLoss:       []float64{0.25, 0.5, 0.9},
			PartitionDurations: []time.Duration{time.Second, 10 * time.Second, 30 * time.Second},
			Parallel:           1, // serial in both modes: compare prefix reuse, not worker count
			WarmStart:          warm,
			Metrics:            reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var violations int
	for _, p := range last.Points {
		violations += p.Violations
	}
	b.ReportMetric(float64(len(last.Points)), "points")
	b.ReportMetric(float64(violations), "violations")
	if warm {
		var forks float64
		for _, m := range reg.Snapshot() {
			if m.Name == "runner_forks_served" {
				forks += m.Value
			}
		}
		b.ReportMetric(forks/float64(b.N), "forks/op")
	}
}

// BenchmarkSweepCold — the chaos sweep with every point run cold from t=0:
// the wall-clock baseline the warm-start claim is measured against.
func BenchmarkSweepCold(b *testing.B) { benchChaosSweep(b, false) }

// BenchmarkSweepWarmStart — the same sweep forked from one shared
// convergence-prefix snapshot. Compare ns/op against BenchmarkSweepCold;
// the committed BENCH_sweep.json records the pair.
func BenchmarkSweepWarmStart(b *testing.B) { benchChaosSweep(b, true) }

// BenchmarkAblationDynamicMesh — A10: fully dynamic 802.1AS (BMCA +
// path-trace + relay tree rebuild) over the redundant mesh: the measured
// synchronization outage after a grandmaster failure.
func BenchmarkAblationDynamicMesh(b *testing.B) {
	var last *experiments.DynamicMeshResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.DynamicMeshStudy(experiments.DynamicMeshConfig{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.SyncOutage.Milliseconds()), "outage-ms")
	b.ReportMetric(float64(last.PassivePorts), "passive-ports")
}

// BenchmarkOneStepVsTwoStep — protocol-mode parity: one-step operation
// (802.1AS-2020 option) matches two-step accuracy at half the event
// traffic.
func BenchmarkOneStepVsTwoStep(b *testing.B) {
	var last *experiments.OneStepStudyResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.OneStepStudy(experiments.OneStepStudyConfig{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TwoStep.OffsetErrRMS, "two-step-rms-ns")
	b.ReportMetric(last.OneStep.OffsetErrRMS, "one-step-rms-ns")
}

// BenchmarkPDESFabric measures the sharded conservative PDES kernel on a
// generated thousand-element TSN fabric (84 sites × 4 switches × 2 ECD VMs
// per switch = 336 switches + 672 VMs). Each op simulates one second of
// fabric time after convergence; sim_s_per_wall_s > 1 means the fabric
// simulates faster than real time. The same seed produces bit-identical
// results at every shard count (TestShardEquivalenceScale), so the curve
// isolates kernel cost, not behaviour. Parallel speedup requires cores:
// on a single-core host the sharded points only measure barrier overhead.
func BenchmarkPDESFabric(b *testing.B) {
	const simPerOp = time.Second
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := core.ScaleConfig(1, 84, 4, 2, shards)
			sys, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Start(); err != nil {
				b.Fatal(err)
			}
			defer sys.Close()                                   // reap the persistent shard workers
			if err := sys.RunFor(2 * time.Second); err != nil { // converge first
				b.Fatal(err)
			}
			startEvents := sys.ProcessedEvents()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := sys.RunFor(simPerOp); err != nil {
					b.Fatal(err)
				}
			}
			wall := time.Since(start)
			b.ReportMetric(float64(simPerOp)*float64(b.N)/float64(wall), "sim_s_per_wall_s")
			b.ReportMetric(float64(cfg.TotalNodes()+cfg.TotalNodes()*cfg.VMsPerNode), "nodes")
			b.ReportMetric(float64(sys.ProcessedEvents()-startEvents)/float64(b.N), "events/op")
		})
	}
}

// BenchmarkWANFabric measures the wide-area tier's overhead on a multi-site
// fabric: the site-level FTA coordinator (pairwise offset exchanges over the
// gateway chain, trimmed-mean aggregation, per-site virtual-correction
// servos) and the WAN delay drift process, both ticking on the control
// scheduler. Each op simulates one second of fabric time after convergence;
// comparing against the matching BenchmarkPDESFabric shape isolates what the
// WAN tier itself costs.
func BenchmarkWANFabric(b *testing.B) {
	const simPerOp = time.Second
	for _, p := range []struct{ sites, shards int }{{4, 1}, {16, 1}, {16, 4}} {
		b.Run(fmt.Sprintf("sites=%d/shards=%d", p.sites, p.shards), func(b *testing.B) {
			cfg := core.ScaleConfig(1, p.sites, 4, 2, p.shards)
			cfg.WanSync.Enabled = true
			cfg.WanSync.F = 1
			cfg.WanSync.Drift.Enabled = true
			sys, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Start(); err != nil {
				b.Fatal(err)
			}
			defer sys.Close()                                   // reap the persistent shard workers
			if err := sys.RunFor(2 * time.Second); err != nil { // converge first
				b.Fatal(err)
			}
			startEvents := sys.ProcessedEvents()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := sys.RunFor(simPerOp); err != nil {
					b.Fatal(err)
				}
			}
			wall := time.Since(start)
			b.ReportMetric(float64(simPerOp)*float64(b.N)/float64(wall), "sim_s_per_wall_s")
			b.ReportMetric(float64(sys.ProcessedEvents()-startEvents)/float64(b.N), "events/op")
			co := sys.Wan()
			if co == nil {
				b.Fatal("WAN coordinator missing")
			}
			b.ReportMetric(float64(len(co.Samples()))/float64(b.N), "wan_samples/op")
		})
	}
}
