package main

import (
	"strings"
	"testing"
)

func doc(baseNS, subjNS, baseEvents, subjEvents float64) *Document {
	return &Document{
		GoMaxProcs: 4,
		Results: []Result{
			{Name: "BenchmarkPDESFabric/shards=1", NsPerOp: baseNS,
				Metrics: map[string]float64{"events/op": baseEvents}},
			{Name: "BenchmarkPDESFabric/shards=4", NsPerOp: subjNS,
				Metrics: map[string]float64{"events/op": subjEvents}},
		},
	}
}

func runGate(t *testing.T, d *Document, maxRegress float64) error {
	t.Helper()
	b, err := find(d, "BenchmarkPDESFabric/shards=1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := find(d, "BenchmarkPDESFabric/shards=4")
	if err != nil {
		t.Fatal(err)
	}
	return gate(d, b, s, maxRegress)
}

func TestGateCleanSpeedup(t *testing.T) {
	if err := runGate(t, doc(100e6, 60e6, 217596, 217596), 0.10); err != nil {
		t.Fatalf("speedup flagged: %v", err)
	}
}

func TestGateWithinRegressBudget(t *testing.T) {
	if err := runGate(t, doc(100e6, 109e6, 217596, 217596), 0.10); err != nil {
		t.Fatalf("9%% regression flagged at 10%% budget: %v", err)
	}
}

func TestGateScalingViolation(t *testing.T) {
	err := runGate(t, doc(100e6, 125e6, 217596, 217596), 0.10)
	if err == nil || !strings.Contains(err.Error(), "scaling violation") {
		t.Fatalf("25%% regression not flagged: %v", err)
	}
}

func TestGateDeterminismViolation(t *testing.T) {
	// Even a faster sharded point fails when the event counts differ: the
	// shard count changed what was simulated, not just how fast.
	err := runGate(t, doc(100e6, 50e6, 217596, 217597), 0.10)
	if err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("events/op mismatch not flagged: %v", err)
	}
}

func TestGateMissingEventsMetric(t *testing.T) {
	d := doc(100e6, 90e6, 217596, 217596)
	d.Results[1].Metrics = nil
	err := runGate(t, d, 0.10)
	if err == nil || !strings.Contains(err.Error(), "events/op metric missing") {
		t.Fatalf("missing metric not flagged: %v", err)
	}
}

func TestFindMissingBenchmark(t *testing.T) {
	if _, err := find(doc(1, 1, 1, 1), "BenchmarkPDESFabric/shards=8"); err == nil {
		t.Fatal("missing sub-benchmark not reported")
	}
}
