// Command shardgate checks PDES shard scaling on one benchjson document:
// the CI bench-smoke job runs BenchmarkPDESFabric at shards=1 and shards=4
// on the same runner and pipes the result here. Two properties gate:
//
//   - Determinism: every shard point must report the same events/op. The
//     fabric executes the exact same simulation at every shard count, so a
//     differing event count means the PDES machinery leaked into behaviour.
//   - Scaling: the sharded point must not regress more than -max-regress
//     (fractional, default 0.10) in ns/op against the shards=1 baseline on
//     the same machine. On a multi-core runner it should be faster; on a
//     single-core runner this bounds the barrier overhead itself.
//
// Comparing two points from one run of one runner sidesteps the noise that
// keeps benchdiff warn-only: machine speed cancels out of the ratio.
//
// Usage:
//
//	shardgate [-bench BenchmarkPDESFabric] [-base shards=1] [-subject shards=4] \
//	          [-max-regress 0.10] bench.json
//
// Exit status: 0 clean, 1 gate violation, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Result and Document mirror cmd/benchjson's JSON shape; unknown fields
// (the environment header) are ignored.
type Result struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type Document struct {
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", "BenchmarkPDESFabric", "benchmark whose sub-benchmarks are compared")
	base := flag.String("base", "shards=1", "baseline sub-benchmark")
	subject := flag.String("subject", "shards=4", "sharded sub-benchmark under test")
	maxRegress := flag.Float64("max-regress", 0.10, "max fractional ns/op regression of subject vs base")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: shardgate [flags] bench.json")
		os.Exit(2)
	}
	doc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardgate:", err)
		os.Exit(2)
	}
	b, err := find(doc, *bench+"/"+*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardgate:", err)
		os.Exit(2)
	}
	s, err := find(doc, *bench+"/"+*subject)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardgate:", err)
		os.Exit(2)
	}
	if err := gate(doc, b, s, *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "shardgate:", err)
		os.Exit(1)
	}
	fmt.Printf("shardgate: ok (%s: %s %.4gms/op vs %s %.4gms/op, gomaxprocs=%d)\n",
		*bench, *base, b.NsPerOp/1e6, *subject, s.NsPerOp/1e6, doc.GoMaxProcs)
}

func load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &Document{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func find(doc *Document, name string) (Result, error) {
	for _, r := range doc.Results {
		if r.Name == name {
			return r, nil
		}
	}
	return Result{}, fmt.Errorf("benchmark %q not in document", name)
}

// gate applies the two checks. Determinism is exact: events/op is a pure
// function of seed and simulated duration, independent of shard count.
func gate(doc *Document, base, subject Result, maxRegress float64) error {
	be, bok := base.Metrics["events/op"]
	se, sok := subject.Metrics["events/op"]
	if !bok || !sok {
		return fmt.Errorf("events/op metric missing (base %v, subject %v)", bok, sok)
	}
	if be != se {
		return fmt.Errorf("determinism violation: %s ran %v events/op, %s ran %v events/op",
			base.Name, be, subject.Name, se)
	}
	if base.NsPerOp <= 0 {
		return fmt.Errorf("baseline %s has non-positive ns/op %v", base.Name, base.NsPerOp)
	}
	if ratio := subject.NsPerOp / base.NsPerOp; ratio > 1+maxRegress {
		return fmt.Errorf("scaling violation: %s is %.2f× the %s baseline (%.4gms vs %.4gms/op, gomaxprocs=%d, limit %.2f×)",
			subject.Name, ratio, base.Name, subject.NsPerOp/1e6, base.NsPerOp/1e6,
			doc.GoMaxProcs, 1+maxRegress)
	}
	return nil
}
