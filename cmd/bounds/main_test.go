package main

import "testing"

func TestRunBounds(t *testing.T) {
	if err := run([]string{"-seed", "2", "-duration", "2m"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBoundsBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
