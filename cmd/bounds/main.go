// Command bounds reproduces the paper's §III-A3 methodology: it measures
// the network latencies between all nodes (via the observed Sync paths,
// standing in for ptp4l's data), derives the reading error E = d_max −
// d_min and the drift offset Γ = 2·r_max·S, and instantiates the
// Kopetz/Ochsenreiter convergence-function bound Π(N, f, E, Γ) =
// u(N, f)·(E + Γ), together with the measurement error γ of eq. 3.2.
//
// Usage:
//
//	bounds [-seed N] [-duration 10m]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"gptpfta/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bounds:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bounds", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	duration := fs.Duration("duration", 10*time.Minute, "fault-free observation window")
	if err := fs.Parse(args); err != nil {
		return err
	}

	exp, err := experiments.Lookup("bounds")
	if err != nil {
		return err
	}
	r, err := exp.Run(context.Background(), experiments.BoundsConfig{Seed: *seed, Duration: *duration})
	if err != nil {
		return err
	}
	res := r.(*experiments.BoundsResult)
	fmt.Printf("=== §III-A3 bound methodology — seed %d, %v fault-free ===\n", *seed, *duration)
	for _, row := range res.Table() {
		fmt.Println(row)
	}
	fmt.Println("\npaper (§III-B):  d_min=4120ns d_max=9188ns E=5068ns Pi=12.636µs gamma=1313ns")
	fmt.Println("paper (§III-C):  Pi=11.42µs gamma=856ns")
	return nil
}
