// Command served runs the experiment registry as an HTTP service: jobs are
// POSTed as JSON (the same strict wire configs the CLIs use), queued into a
// bounded work queue, fanned across runner pools with panic isolation and
// per-job timeouts, and warm-capable studies fork their convergence prefix
// from a shared LRU snapshot cache so concurrent sweeps that share a prefix
// converge once.
//
// Usage:
//
//	served [-addr :8080] [-workers N] [-queue N] [-point-parallel N]
//	       [-cache-entries N] [-cache-bytes N] [-max-points N]
//	       [-job-timeout 0] [-no-warm] [-state-dir DIR]
//
// -state-dir persists every finished job's status and result envelopes as
// JSON under DIR; a restarted server loads them back so GET /v1/jobs/{id}
// and GET /v1/jobs/{id}/result keep answering for jobs that completed
// before the restart, and new job IDs continue past the persisted ones.
//
// -addr :0 binds an ephemeral port; the bound address is printed on stdout
// as "listening on <addr>" either way, so scripts can scrape it.
//
// API:
//
//	GET    /v1/experiments            registry listing with default configs
//	POST   /v1/jobs                   submit {experiment, config, seed, points}
//	GET    /v1/jobs                   list jobs
//	GET    /v1/jobs/{id}              job status
//	DELETE /v1/jobs/{id}              cancel a queued or running job
//	GET    /v1/jobs/{id}/result       versioned result envelopes (409 until done)
//	GET    /v1/jobs/{id}/metrics      obs metrics snapshot as JSONL
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gptpfta/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 2, "number of jobs executed concurrently")
	queue := fs.Int("queue", 16, "bounded job queue depth (full queue answers 503)")
	pointParallel := fs.Int("point-parallel", 1, "worker count of each job's point pool")
	cacheEntries := fs.Int("cache-entries", 8, "warm-snapshot LRU entry bound (-1 = unbounded)")
	cacheBytes := fs.Int64("cache-bytes", 0, "warm-snapshot LRU byte bound (0 = unbounded)")
	maxPoints := fs.Int("max-points", 64, "cap on a single job's point fan-out")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job execution timeout (0 = none)")
	noWarm := fs.Bool("no-warm", false, "disable warm-start snapshot sharing by default")
	stateDir := fs.String("state-dir", "", "persist finished jobs as JSON here and reload them on restart")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		PointParallel:  *pointParallel,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		MaxPoints:      *maxPoints,
		DefaultTimeout: *jobTimeout,
		DisableWarm:    *noWarm,
		StateDir:       *stateDir,
	})
	s.Start()
	defer s.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
	}

	// Graceful drain: stop accepting connections, finish in-flight
	// requests, then cancel running jobs via the deferred s.Stop.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
