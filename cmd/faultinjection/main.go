// Command faultinjection reproduces the paper's 24 h fault-injection
// experiment (Fig. 4a, Fig. 4b and Fig. 5): rotating grandmaster
// shutdowns, random redundant-VM shutdowns, CLOCK_SYNCTIME takeovers by
// the hypervisor's dependent clock, and the transient ptp4l software
// faults — reporting the measured precision series, its distribution, and
// the event window around the maximum spike.
//
// Usage:
//
//	faultinjection [-seed N] [-duration 24h] [-gm-period 30m] [-chaos plan.json] [-holdover-window 2s]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/experiments"
	"gptpfta/internal/measure"
	"gptpfta/internal/obs"
	"gptpfta/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultinjection:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultinjection", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	duration := fs.Duration("duration", 24*time.Hour, "campaign duration")
	gmPeriod := fs.Duration("gm-period", 30*time.Minute, "interval between grandmaster shutdowns")
	fig5 := fs.Duration("fig5-window", time.Hour, "event window width around the max spike")
	chaosPath := fs.String("chaos", "", "network chaos scenario plan (JSON) to run alongside the VM campaign")
	holdover := fs.Duration("holdover-window", 0, "arm the ptp4l holdover watchdog with this quorum-starvation window (0 = off)")
	csvDir := fs.String("csv", "", "directory to write samples.csv, windows.csv and histogram.csv into")
	metricsPath := fs.String("metrics", "", "write a JSONL metrics snapshot (one line per metric) to this file")
	profCfg := &prof.Config{}
	fs.StringVar(&profCfg.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&profCfg.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&profCfg.Trace, "trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*profCfg)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "faultinjection:", perr)
		}
	}()

	var plan *chaos.Plan
	if *chaosPath != "" {
		plan, err = chaos.Load(*chaosPath)
		if err != nil {
			return err
		}
		fmt.Printf("chaos plan %q: %d actions\n", plan.Name, len(plan.Actions))
	}

	fmt.Printf("=== Fig. 4 / Fig. 5 — fault injection, seed %d, duration %v ===\n", *seed, *duration)
	res, err := experiments.FaultInjection(experiments.FaultInjectionConfig{
		Seed:           *seed,
		Duration:       *duration,
		GMPeriod:       *gmPeriod,
		ChaosPlan:      plan,
		HoldoverWindow: *holdover,
	})
	if err != nil {
		return err
	}

	fmt.Printf("bound parameters: E = %v, Gamma = %v, Pi = %v, gamma = %v, Pi+gamma = %v\n",
		res.ReadingError, res.DriftOffset, res.Bound, res.Gamma, res.Bound+res.Gamma)
	fmt.Println(res.Summary())

	fmt.Println("\n--- Fig. 4a: measured precision, 120 s windows (log scale) ---")
	fmt.Print(experiments.RenderSeries(res.Windows, res.Bound, res.Gamma, 18))

	fmt.Println("\n--- Fig. 4b: distribution of per-second precision ---")
	fmt.Printf("%s\n", res.Stats)
	hist := measure.ComputeHistogram(res.Samples, 50, 1000)
	fmt.Print(experiments.RenderHistogram(hist, 60))

	w := res.Fig5Window(*fig5)
	fmt.Printf("\n--- Fig. 5: %v window around the max spike (%.0f ns at t=%s) ---\n",
		*fig5, w.SpikeNS, time.Duration(w.SpikeAtSec*float64(time.Second)).Truncate(time.Second))
	fmt.Print(experiments.RenderEvents(w.Events, w.FromSec))

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, res, hist); err != nil {
			return err
		}
		fmt.Printf("\nCSV series written to %s\n", *csvDir)
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		if err := obs.WriteJSONL(f, "faultinjection", res.ObsMetrics()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", *metricsPath)
	}
	return nil
}

func writeCSVs(dir string, res *experiments.FaultInjectionResult, hist measure.Histogram) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", name, err)
		}
		return f.Close()
	}
	if err := write("samples.csv", func(f *os.File) error {
		return measure.WriteSamplesCSV(f, res.Samples)
	}); err != nil {
		return err
	}
	if err := write("windows.csv", func(f *os.File) error {
		return measure.WriteWindowsCSV(f, res.Windows)
	}); err != nil {
		return err
	}
	if err := write("histogram.csv", func(f *os.File) error {
		return measure.WriteHistogramCSV(f, hist)
	}); err != nil {
		return err
	}
	return write("events.csv", func(f *os.File) error {
		return res.Events.WriteCSV(f)
	})
}
