// Command sweep runs the design-space studies beyond the paper's headline
// figures: synchronization-interval and domain-count sweeps, the BMCA
// re-election ablation, the 2f+1 fail-consistent voting variant, and the
// §IV future-work recovery comparison (GNU/Linux vs unikernel reboot).
//
// Usage:
//
//	sweep [-seed N] [-which all|interval|domains|bmca|voting|recovery]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gptpfta/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	which := fs.String("which", "all", "sweep selection: all|interval|domains|dynamic|bmca|voting|tas|recovery")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := func(name string) bool { return *which == "all" || *which == name }

	if want("interval") {
		fmt.Println("=== synchronization-interval sweep (Γ = 2·r_max·S) ===")
		points, err := experiments.SyncIntervalSweep(*seed, nil, 0)
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Println("  " + p.String())
		}
		fmt.Println()
	}
	if want("domains") {
		fmt.Println("=== domain-count sweep under one Byzantine grandmaster ===")
		points, err := experiments.DomainCountSweep(*seed, nil, 0)
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Println("  " + p.String())
		}
		fmt.Println("  (M = 2 cannot mask any Byzantine fault: N < 2f+1)")
		fmt.Println()
	}
	if want("dynamic") {
		fmt.Println("=== fully dynamic 802.1AS over the redundant mesh ===")
		res, err := experiments.DynamicMeshStudy(experiments.DynamicMeshConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println("  " + res.Summary())
		fmt.Println()
	}
	if want("bmca") {
		fmt.Println("=== BMCA re-election vs static external port configuration ===")
		for _, interval := range []time.Duration{time.Second, 500 * time.Millisecond, 250 * time.Millisecond} {
			res, err := experiments.BMCAReconvergence(experiments.BMCAReconvergenceConfig{
				Seed:             *seed,
				AnnounceInterval: interval,
			})
			if err != nil {
				return err
			}
			fmt.Println("  " + res.Summary())
		}
		fmt.Println()
	}
	if want("voting") {
		fmt.Println("=== 2f+1 fail-consistent monitor voting (§II-A) ===")
		res, err := experiments.VotingFailover(experiments.VotingConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println("  " + res.Summary())
		fmt.Println()
	}
	if want("tas") {
		fmt.Println("=== TSN egress (802.1Qbv + preemption) vs commodity FIFO ===")
		res, err := experiments.TASStudy(experiments.TASStudyConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println("  " + res.Summary())
		fmt.Printf("  fifo:      Sync latency %v..%v over %d Syncs, %d BE frames\n",
			res.FIFO.SyncLatencyMin, res.FIFO.SyncLatencyMax, res.FIFO.SyncsObserved, res.FIFO.BEFramesSent)
		fmt.Printf("  802.1Qbv:  Sync latency %v..%v over %d Syncs, %d BE frames\n",
			res.Protected.SyncLatencyMin, res.Protected.SyncLatencyMax, res.Protected.SyncsObserved, res.Protected.BEFramesSent)
		fmt.Println()
	}
	if want("recovery") {
		fmt.Println("=== §IV future work: GNU/Linux vs unikernel recovery ===")
		res, err := experiments.RecoveryComparison(experiments.RecoveryConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println("  " + res.Summary())
		fmt.Printf("  linux:     %d failures, %.0f s GM-domain downtime, mean precision %.0f ns\n",
			res.Linux.Failures, res.Linux.StaleDomainSeconds, res.Linux.MeanPrecisionNS)
		fmt.Printf("  unikernel: %d failures, %.0f s GM-domain downtime, mean precision %.0f ns\n",
			res.Unikernel.Failures, res.Unikernel.StaleDomainSeconds, res.Unikernel.MeanPrecisionNS)
	}
	return nil
}
