// Command sweep runs the design-space studies beyond the paper's headline
// figures — synchronization-interval and domain-count sweeps, the dynamic
// 802.1AS and BMCA ablations, the 2f+1 fail-consistent voting variant, the
// TSN egress study and the §IV recovery comparison — dispatching each study
// through the experiments registry and fanning independent studies across
// the runner's worker pool. Output order is deterministic regardless of
// completion order.
//
// Usage:
//
//	sweep [-seed N] [-parallel N] [-shards N] [-warm-start] [-config file.json]
//	      [-which all|interval|domains|dynamic|bmca|voting|tas|recovery]
//
// -shards runs shard-aware studies on the sharded PDES kernel (the tables
// are bit-identical at every shard count); studies without a shards knob
// ignore it.
//
// -config overlays a JSON config file onto the selected study's config
// through the registry's strict decode path (the same path the job server
// uses); it requires a single-study -which selection.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gptpfta/internal/experiments"
	"gptpfta/internal/obs"
	"gptpfta/internal/prof"
	"gptpfta/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// study is one registry dispatch plus its rendering epilogue.
type study struct {
	key        string
	header     string
	experiment string
	cfg        func(seed, parallel, shards int64) any
	footnotes  []string
}

func studies() []study {
	return []study{
		{
			key:        "interval",
			header:     "synchronization-interval sweep (Γ = 2·r_max·S)",
			experiment: "interval",
			cfg: func(seed, parallel, shards int64) any {
				return experiments.IntervalSweepConfig{Seed: seed, Parallel: int(parallel), Shards: int(shards)}
			},
		},
		{
			key:        "domains",
			header:     "domain-count sweep under one Byzantine grandmaster",
			experiment: "domains",
			cfg: func(seed, parallel, shards int64) any {
				return experiments.DomainSweepConfig{Seed: seed, Parallel: int(parallel), Shards: int(shards)}
			},
			footnotes: []string{"(M = 2 cannot mask any Byzantine fault: N < 2f+1)"},
		},
		{
			key:        "dynamic",
			header:     "fully dynamic 802.1AS over the redundant mesh",
			experiment: "dynamic",
			cfg: func(seed, _, _ int64) any {
				return experiments.DynamicMeshConfig{Seed: seed}
			},
		},
		{
			key:        "bmca",
			header:     "BMCA re-election vs static external port configuration (announce 1s)",
			experiment: "bmca",
			cfg: func(seed, _, _ int64) any {
				return experiments.BMCAReconvergenceConfig{Seed: seed, AnnounceInterval: time.Second}
			},
		},
		{
			key:        "bmca-500ms",
			header:     "BMCA re-election, announce 500ms",
			experiment: "bmca",
			cfg: func(seed, _, _ int64) any {
				return experiments.BMCAReconvergenceConfig{Seed: seed, AnnounceInterval: 500 * time.Millisecond}
			},
		},
		{
			key:        "bmca-250ms",
			header:     "BMCA re-election, announce 250ms",
			experiment: "bmca",
			cfg: func(seed, _, _ int64) any {
				return experiments.BMCAReconvergenceConfig{Seed: seed, AnnounceInterval: 250 * time.Millisecond}
			},
		},
		{
			key:        "voting",
			header:     "2f+1 fail-consistent monitor voting (§II-A)",
			experiment: "voting",
			cfg: func(seed, _, shards int64) any {
				return experiments.VotingConfig{Seed: seed, Shards: int(shards)}
			},
		},
		{
			key:        "tas",
			header:     "TSN egress (802.1Qbv + preemption) vs commodity FIFO",
			experiment: "tas",
			cfg: func(seed, _, _ int64) any {
				return experiments.TASStudyConfig{Seed: seed}
			},
		},
		{
			key:        "recovery",
			header:     "§IV future work: GNU/Linux vs unikernel recovery",
			experiment: "recovery",
			cfg: func(seed, parallel, shards int64) any {
				return experiments.RecoveryConfig{Seed: seed, Parallel: int(parallel), Shards: int(shards)}
			},
		},
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	which := fs.String("which", "all", "study selection: all|interval|domains|dynamic|bmca|voting|tas|recovery")
	parallel := fs.Int("parallel", 0, "worker count for independent studies (0 = GOMAXPROCS, 1 = sequential)")
	shards := fs.Int("shards", 1, "PDES shard count for shard-aware studies (1 = legacy single scheduler; results are bit-identical)")
	warmStart := fs.Bool("warm-start", false, "fork sweep points from a shared warm-state snapshot where eligible (identical tables; prefix-hash mismatches fall back to cold runs)")
	configPath := fs.String("config", "", "JSON config file overlaid onto the selected study's config (requires a single-study -which)")
	metricsPath := fs.String("metrics", "", "write a JSONL metrics snapshot (one line per metric, tagged per study) to this file")
	profCfg := &prof.Config{}
	fs.StringVar(&profCfg.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&profCfg.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&profCfg.Trace, "trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*profCfg)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "sweep:", perr)
		}
	}()

	selected := make([]study, 0)
	for _, s := range studies() {
		// "bmca" selects every announce-interval variant.
		if *which == "all" || *which == s.key || strings.HasPrefix(s.key, *which+"-") {
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown study %q (registry knows: %s)", *which,
			strings.Join(experiments.Names(), ", "))
	}
	var overlay json.RawMessage
	if *configPath != "" {
		if len(selected) != 1 {
			return fmt.Errorf("-config requires a single-study -which selection, got %d studies", len(selected))
		}
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		overlay = raw
	}

	ctx := context.Background()
	campaign := obs.NewRegistry()
	runs := make([]runner.Run, len(selected))
	for i, s := range selected {
		s := s
		exp, err := experiments.Lookup(s.experiment)
		if err != nil {
			return err
		}
		// The study's flag-built config round-trips through the registry's
		// strict decode path (shared with the job server), with the
		// -config overlay merged on top; warm-start runtime handles are
		// re-attached after decoding.
		cfg, err := experiments.MergeConfig(exp, s.cfg(*seed, int64(*parallel), int64(*shards)), overlay)
		if err != nil {
			return fmt.Errorf("%s: %w", s.key, err)
		}
		if *warmStart {
			cfg, _ = experiments.EnableWarmStart(cfg, campaign, nil)
		}
		runs[i] = runner.Run{Name: s.key, Do: func(ctx context.Context) (any, error) {
			res, err := exp.Run(ctx, cfg)
			if err != nil {
				return nil, err
			}
			return block{key: s.key, text: render(s, res), res: res}, nil
		}}
	}

	outcomes := runner.New(*parallel).WithMetrics(campaign).Execute(ctx, runs)
	blocks, err := runner.Values[block](outcomes)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		fmt.Print(b.text)
	}
	if *warmStart {
		fmt.Println(runner.WarmSummary(campaign))
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, blocks, campaign); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsPath)
	}
	return nil
}

// block is one study's rendered output plus its result, kept so -metrics
// can snapshot carriers after the deterministic ordering is restored.
type block struct {
	key  string
	text string
	res  experiments.Result
}

// writeMetrics emits one JSONL metrics file: each study's snapshot (when
// its result carries one) tagged with the study key, plus the campaign
// runner metrics tagged "runner".
func writeMetrics(path string, blocks []block, campaign *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		c, ok := b.res.(experiments.ObsCarrier)
		if !ok {
			continue
		}
		if err := obs.WriteJSONL(f, b.key, c.ObsMetrics()); err != nil {
			f.Close()
			return err
		}
	}
	if err := obs.WriteJSONL(f, "runner", campaign.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// render produces one study's output block: header, summary, table,
// footnotes.
func render(s study, res experiments.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", s.header)
	fmt.Fprintf(&b, "  %s\n", res.Summary())
	for _, line := range renderRows(res.Rows()) {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	for _, note := range s.footnotes {
		fmt.Fprintf(&b, "  %s\n", note)
	}
	b.WriteString("\n")
	return b.String()
}

// renderRows aligns a Rows() table into fixed-width columns.
func renderRows(rows [][]string) []string {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	out := make([]string, 0, len(rows))
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		out = append(out, strings.TrimRight(b.String(), " "))
	}
	return out
}
