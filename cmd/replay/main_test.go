package main

import (
	"os"
	"path/filepath"
	"testing"

	"gptpfta/internal/measure"
)

func TestRunReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	samples := []measure.Sample{
		{Seq: 1, AtSec: 1, PiStarNS: 300, Replies: 6},
		{Seq: 2, AtSec: 2, PiStarNS: 200, Replies: 6},
		{Seq: 3, AtSec: 125, PiStarNS: 400, Replies: 6},
	}
	if err := measure.WriteSamplesCSV(f, samples); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-samples", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunReplayErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -samples accepted")
	}
	if err := run([]string{"-samples", "/no/such/file.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-samples", empty}); err == nil {
		t.Fatal("empty file accepted")
	}
}
