// Command replay re-renders a precision series previously exported with
// `faultinjection -csv`: the ASCII chart, the distribution and the summary
// statistics — offline analysis of recorded experiment data.
//
// Usage:
//
//	replay -samples out/samples.csv [-bound 11.42us] [-gamma 856ns] [-window 2m]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gptpfta/internal/experiments"
	"gptpfta/internal/measure"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	path := fs.String("samples", "", "samples.csv written by faultinjection -csv (required)")
	bound := fs.Duration("bound", 11420*time.Nanosecond, "precision bound Pi to draw")
	gamma := fs.Duration("gamma", 856*time.Nanosecond, "measurement error gamma to draw")
	window := fs.Duration("window", 2*time.Minute, "aggregation window width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-samples is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := measure.ParseSamplesCSV(f)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no samples in %s", *path)
	}

	fmt.Printf("%d samples from %s\n", len(samples), *path)
	fmt.Println(measure.ComputeStats(samples))
	fmt.Printf("p50 = %.0f ns, p99 = %.0f ns, p99.9 = %.0f ns\n",
		measure.Quantile(samples, 0.5), measure.Quantile(samples, 0.99),
		measure.Quantile(samples, 0.999))
	fmt.Printf("violations beyond Pi+gamma = %v: %d\n\n", *bound+*gamma,
		measure.ViolationCount(samples, float64(*bound+*gamma)))

	windows := measure.Aggregate(samples, *window)
	fmt.Print(experiments.RenderSeries(windows, *bound, *gamma, 18))
	fmt.Println()
	hist := measure.ComputeHistogram(samples, 50, 1000)
	fmt.Print(experiments.RenderHistogram(hist, 60))
	return nil
}
