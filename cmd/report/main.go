// Command report regenerates every experiment in the paper's evaluation in
// one run — the bound methodology, Fig. 3a, Fig. 3b, Fig. 4a/4b, Fig. 5
// and the ablations — at a configurable time scale, and prints a
// paper-vs-measured comparison suitable for EXPERIMENTS.md.
//
// Usage:
//
//	report [-seed N] [-scale 0.25] [-full]
//
// -scale compresses the experiment horizons (1 → the paper's 1 h / 24 h);
// -full is shorthand for -scale 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gptpfta/internal/experiments"
	"gptpfta/internal/measure"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	scale := fs.Float64("scale", 0.05, "time-scale factor (1 = the paper's full horizons)")
	full := fs.Bool("full", false, "run the paper's full horizons (1 h attack run, 24 h fault injection)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *full {
		*scale = 1
	}
	if *scale <= 0 {
		return fmt.Errorf("scale must be positive, got %v", *scale)
	}
	attackDur := time.Duration(float64(time.Hour) * *scale)
	injectDur := time.Duration(float64(24*time.Hour) * *scale)
	if attackDur < 8*time.Minute {
		attackDur = 8 * time.Minute
	}
	if injectDur < 20*time.Minute {
		injectDur = 20 * time.Minute
	}

	fmt.Printf("### reproduction report — seed %d, scale %.2f (attack run %v, fault injection %v)\n\n",
		*seed, *scale, attackDur, injectDur)

	if err := reportBounds(*seed); err != nil {
		return err
	}
	if err := reportFig3(*seed, attackDur, false); err != nil {
		return err
	}
	if err := reportFig3(*seed, attackDur, true); err != nil {
		return err
	}
	if err := reportFig4(*seed, injectDur); err != nil {
		return err
	}
	return reportAblations(*seed)
}

func reportBounds(seed int64) error {
	res, err := experiments.Bounds(experiments.BoundsConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("## E1 — bound methodology (§III-A3/B)")
	for _, row := range res.Table() {
		fmt.Println("  " + row)
	}
	fmt.Println("  paper: d_min=4120ns d_max=9188ns E=5068ns Pi=12.636us gamma=1313ns")
	fmt.Println()
	return nil
}

func reportFig3(seed int64, d time.Duration, diverse bool) error {
	res, err := experiments.CyberResilience(experiments.CyberResilienceConfig{
		Seed: seed, Duration: d, DiverseKernels: diverse,
	})
	if err != nil {
		return err
	}
	name, paper := "E2 — Fig. 3a (identical kernels)",
		"paper: second compromise at 00:31:52 breaks the bound; nodes lose synchronization"
	if diverse {
		name, paper = "E3 — Fig. 3b (diverse kernels)",
			"paper: second exploit fails; precision stays within Pi+gamma"
	}
	fmt.Println("## " + name)
	fmt.Println("  " + res.Summary())
	for _, r := range res.ExploitResults {
		fmt.Println("    " + r.String())
	}
	fmt.Println("  " + paper)
	fmt.Print(indent(experiments.RenderSeries(res.Windows, res.Bound, res.Gamma, 14)))
	fmt.Println()
	return nil
}

func reportFig4(seed int64, d time.Duration) error {
	res, err := experiments.FaultInjection(experiments.FaultInjectionConfig{Seed: seed, Duration: d})
	if err != nil {
		return err
	}
	fmt.Println("## E4/E5 — Fig. 4a/4b (fault injection)")
	fmt.Println("  " + res.Summary())
	fmt.Println("  paper: avg 322ns ± 421ns, min 33ns, max 10.08us within Pi+gamma=12.28us;")
	fmt.Println("         94 fail-silent VMs (48 GM), 2992 tx-ts timeouts, 347 deadline misses over 24h")
	fmt.Print(indent(experiments.RenderSeries(res.Windows, res.Bound, res.Gamma, 14)))
	fmt.Println("  distribution:")
	fmt.Print(indent(experiments.RenderHistogram(measure.ComputeHistogram(res.Samples, 50, 1000), 40)))

	w := res.Fig5Window(time.Hour)
	fmt.Printf("## E6 — Fig. 5 (event window around the %.0f ns spike)\n", w.SpikeNS)
	fmt.Print(experiments.RenderEvents(w.Events, w.FromSec))
	fmt.Println()
	return nil
}

func reportAblations(seed int64) error {
	fmt.Println("## A1/A2/A3 — ablations")
	a1, err := experiments.BaselineNoStartupSync(experiments.BaselineConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("  " + a1.Summary())
	a2, err := experiments.AblationSingleDomainVsFTA(experiments.BaselineConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("  " + a2.Summary())
	a3, err := experiments.AblationFlagPolicy(experiments.BaselineConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("  " + a3.Summary())
	return nil
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "  " + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += "  " + s[start:]
	}
	return out
}
