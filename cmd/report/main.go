// Command report regenerates every experiment in the paper's evaluation in
// one run — the bound methodology, Fig. 3a, Fig. 3b, Fig. 4a/4b, Fig. 5
// and the ablations — at a configurable time scale, and prints a
// paper-vs-measured comparison suitable for EXPERIMENTS.md. Independent
// studies fan out across the runner's worker pool; the report order is
// fixed regardless of completion order. With -csv every result's generic
// Rows() table is written as one CSV file per study.
//
// Usage:
//
//	report [-seed N] [-scale 0.25] [-full] [-parallel N] [-shards N] [-warm-start]
//	       [-csv dir] [-config study=file.json ...]
//
// -shards runs every study on the sharded PDES kernel; the report is
// bit-identical at every shard count.
//
// -scale compresses the experiment horizons (1 → the paper's 1 h / 24 h);
// -full is shorthand for -scale 1. -config overlays a JSON config file onto
// the named study's config through the registry's strict decode path (the
// same path the job server uses), so the same JSON drives both the CLI and
// POST /v1/jobs.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gptpfta/internal/experiments"
	"gptpfta/internal/measure"
	"gptpfta/internal/obs"
	"gptpfta/internal/prof"
	"gptpfta/internal/runner"
)

// profFlags registers the shared profiling flags on a command's flag set.
func profFlags(fs *flag.FlagSet) *prof.Config {
	cfg := &prof.Config{}
	fs.StringVar(&cfg.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&cfg.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&cfg.Trace, "trace", "", "write a runtime execution trace to this file")
	return cfg
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

// section is one report entry: the rendered text block plus the result it
// came from, kept for the generic CSV emission.
type section struct {
	name string
	text string
	res  experiments.Result
}

func run(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	scale := fs.Float64("scale", 0.05, "time-scale factor (1 = the paper's full horizons)")
	full := fs.Bool("full", false, "run the paper's full horizons (1 h attack run, 24 h fault injection)")
	parallel := fs.Int("parallel", 0, "worker count for independent studies (0 = GOMAXPROCS, 1 = sequential)")
	shards := fs.Int("shards", 1, "PDES shard count for every study (1 = legacy single scheduler; results are bit-identical)")
	warmStart := fs.Bool("warm-start", false, "fork warm-eligible studies from convergence-prefix snapshots (identical results; ineligible studies fall back to cold runs)")
	csvDir := fs.String("csv", "", "directory to write one <study>.csv per result into")
	metricsPath := fs.String("metrics", "", "write a JSONL metrics snapshot (one line per metric, tagged per study) to this file")
	overlays := map[string]json.RawMessage{}
	fs.Func("config", "overlay a JSON config onto one study: study=file.json (repeatable; studies: bounds, fig3a, fig3b, fig4, ablation-*)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want study=file.json, got %q", v)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		overlays[name] = raw
		return nil
	})
	profCfg := profFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*profCfg)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "report:", perr)
		}
	}()
	if *full {
		*scale = 1
	}
	if *scale <= 0 {
		return fmt.Errorf("scale must be positive, got %v", *scale)
	}
	attackDur := time.Duration(float64(time.Hour) * *scale)
	injectDur := time.Duration(float64(24*time.Hour) * *scale)
	if attackDur < 8*time.Minute {
		attackDur = 8 * time.Minute
	}
	if injectDur < 20*time.Minute {
		injectDur = 20 * time.Minute
	}

	fmt.Printf("### reproduction report — seed %d, scale %.2f (attack run %v, fault injection %v)\n\n",
		*seed, *scale, attackDur, injectDur)

	type job struct {
		name   string
		exp    string
		cfg    any
		render func(experiments.Result) string
	}
	campaign := obs.NewRegistry()
	jobs := []job{
		{"bounds", "bounds",
			experiments.BoundsConfig{Seed: *seed, Shards: *shards},
			renderBounds},
		{"fig3a", "resilience",
			experiments.CyberResilienceConfig{Seed: *seed, Duration: attackDur, Shards: *shards},
			func(r experiments.Result) string { return renderFig3(r, false) }},
		{"fig3b", "resilience",
			experiments.CyberResilienceConfig{Seed: *seed, Duration: attackDur, DiverseKernels: true, Shards: *shards},
			func(r experiments.Result) string { return renderFig3(r, true) }},
		{"fig4", "faultinjection",
			experiments.FaultInjectionConfig{Seed: *seed, Duration: injectDur, Shards: *shards}, renderFig4},
		{"ablation-baseline", "baseline", experiments.BaselineConfig{Seed: *seed, Shards: *shards}, renderSummary},
		{"ablation-single-domain", "single-domain", experiments.BaselineConfig{Seed: *seed, Shards: *shards}, renderSummary},
		{"ablation-flag-policy", "flag-policy", experiments.BaselineConfig{Seed: *seed, Shards: *shards}, renderSummary},
	}
	known := map[string]bool{}
	for _, j := range jobs {
		known[j.name] = true
	}
	for name := range overlays {
		if !known[name] {
			return fmt.Errorf("-config: unknown study %q", name)
		}
	}

	runs := make([]runner.Run, len(jobs))
	for i, j := range jobs {
		j := j
		exp, err := experiments.Lookup(j.exp)
		if err != nil {
			return err
		}
		// Every config round-trips through the registry's strict decode
		// path — the CLI and the job server share one wire contract —
		// with the study's -config overlay (if any) merged on top.
		// Runtime handles (campaign metrics, warm-start) are re-attached
		// after decoding; they do not survive the wire by design.
		cfg, err := experiments.MergeConfig(exp, j.cfg, overlays[j.name])
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		if *warmStart {
			cfg, _ = experiments.EnableWarmStart(cfg, campaign, nil)
		}
		runs[i] = runner.Run{Name: j.name, Do: func(ctx context.Context) (any, error) {
			res, err := exp.Run(ctx, cfg)
			if err != nil {
				return nil, err
			}
			return section{name: j.name, text: j.render(res), res: res}, nil
		}}
	}
	outcomes := runner.New(*parallel).WithMetrics(campaign).Execute(context.Background(), runs)
	sections, err := runner.Values[section](outcomes)
	if err != nil {
		return err
	}

	fmt.Println("## E1 — bound methodology (§III-A3/B)")
	fmt.Print(sections[0].text)
	fmt.Println("## E2 — Fig. 3a (identical kernels)")
	fmt.Print(sections[1].text)
	fmt.Println("## E3 — Fig. 3b (diverse kernels)")
	fmt.Print(sections[2].text)
	fmt.Println("## E4/E5/E6 — Fig. 4a/4b and Fig. 5 (fault injection)")
	fmt.Print(sections[3].text)
	fmt.Println("## A1/A2/A3 — ablations")
	for _, s := range sections[4:] {
		fmt.Print(s.text)
	}
	if *warmStart {
		fmt.Println(runner.WarmSummary(campaign))
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, sections); err != nil {
			return err
		}
		fmt.Printf("\nCSV tables written to %s\n", *csvDir)
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, sections, campaign); err != nil {
			return err
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", *metricsPath)
	}
	return nil
}

// writeMetrics emits one JSONL metrics file: each study's registry snapshot
// tagged with the study name, plus the campaign-level runner metrics tagged
// "runner".
func writeMetrics(path string, sections []section, campaign *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, s := range sections {
		c, ok := s.res.(experiments.ObsCarrier)
		if !ok {
			continue
		}
		if err := obs.WriteJSONL(f, s.name, c.ObsMetrics()); err != nil {
			f.Close()
			return err
		}
	}
	if err := obs.WriteJSONL(f, "runner", campaign.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSVs emits every section's Rows() — the same generic shape for
// every study, no per-type special cases.
func writeCSVs(dir string, sections []section) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range sections {
		f, err := os.Create(filepath.Join(dir, s.name+".csv"))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.WriteAll(s.res.Rows()); err != nil {
			f.Close()
			return fmt.Errorf("write %s.csv: %w", s.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func renderBounds(r experiments.Result) string {
	res := r.(*experiments.BoundsResult)
	var b strings.Builder
	for _, row := range res.Table() {
		fmt.Fprintf(&b, "  %s\n", row)
	}
	fmt.Fprintln(&b, "  paper: d_min=4120ns d_max=9188ns E=5068ns Pi=12.636us gamma=1313ns")
	fmt.Fprintln(&b)
	return b.String()
}

func renderFig3(r experiments.Result, diverse bool) string {
	res := r.(*experiments.CyberResilienceResult)
	paper := "paper: second compromise at 00:31:52 breaks the bound; nodes lose synchronization"
	if diverse {
		paper = "paper: second exploit fails; precision stays within Pi+gamma"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %s\n", res.Summary())
	for _, e := range res.ExploitResults {
		fmt.Fprintf(&b, "    %s\n", e.String())
	}
	fmt.Fprintf(&b, "  %s\n", paper)
	b.WriteString(indent(experiments.RenderSeries(res.Windows, res.Bound, res.Gamma, 14)))
	fmt.Fprintln(&b)
	return b.String()
}

func renderFig4(r experiments.Result) string {
	res := r.(*experiments.FaultInjectionResult)
	var b strings.Builder
	fmt.Fprintf(&b, "  %s\n", res.Summary())
	fmt.Fprintln(&b, "  paper: avg 322ns ± 421ns, min 33ns, max 10.08us within Pi+gamma=12.28us;")
	fmt.Fprintln(&b, "         94 fail-silent VMs (48 GM), 2992 tx-ts timeouts, 347 deadline misses over 24h")
	b.WriteString(indent(experiments.RenderSeries(res.Windows, res.Bound, res.Gamma, 14)))
	fmt.Fprintln(&b, "  distribution:")
	b.WriteString(indent(experiments.RenderHistogram(measure.ComputeHistogram(res.Samples, 50, 1000), 40)))

	w := res.Fig5Window(time.Hour)
	fmt.Fprintf(&b, "  event window around the %.0f ns spike:\n", w.SpikeNS)
	b.WriteString(experiments.RenderEvents(w.Events, w.FromSec))
	fmt.Fprintln(&b)
	return b.String()
}

func renderSummary(r experiments.Result) string {
	return "  " + r.Summary() + "\n"
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "  " + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += "  " + s[start:]
	}
	return out
}
