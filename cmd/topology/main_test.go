package main

import (
	"path/filepath"
	"testing"
)

func TestRunTopology(t *testing.T) {
	if err := run([]string{"-seed", "3", "-diverse"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTopologySaveAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := run([]string{"-save", path}); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := run([]string{"-config", "/no/such/config.json"}); err == nil {
		t.Fatal("missing config accepted")
	}
}
