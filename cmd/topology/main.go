// Command topology prints the wired testbed — the textual form of the
// paper's Fig. 2 — and optionally writes or reads a JSON configuration so
// that experiment setups can be version-controlled and shared.
//
// Usage:
//
//	topology [-seed N] [-config file.json] [-save file.json] [-diverse]
//	         [-sites N] [-nodes N] [-vms N] [-wan]
//
// -sites 2+ renders the wide-area fabric instead of the single-site paper
// testbed: each site as a cluster of switches with its gateway uplinks, the
// WAN gateway chain annotated with every span's extra-delay/asymmetry
// setting, and (with -wan) the site-level FTA parameters — quorum budget,
// resync interval, holdover window and the delay-drift process.
package main

import (
	"flag"
	"fmt"
	"os"

	"gptpfta/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topology:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	configPath := fs.String("config", "", "load the configuration from this JSON file")
	savePath := fs.String("save", "", "write the effective configuration to this JSON file")
	diverse := fs.Bool("diverse", false, "diversify grandmaster kernels")
	sites := fs.Int("sites", 1, "number of sites (2+ builds the wide-area gateway chain)")
	nodes := fs.Int("nodes", 4, "switches per site")
	vms := fs.Int("vms", 2, "clock-sync VMs per switch")
	wanFTA := fs.Bool("wan", false, "enable the site-level FTA tier (multi-site only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg core.Config
	if *configPath != "" {
		loaded, err := core.LoadConfigFile(*configPath)
		if err != nil {
			return err
		}
		cfg = loaded
	} else if *sites > 1 || *nodes != 4 || *vms != 2 {
		cfg = core.ScaleConfig(*seed, *sites, *nodes, *vms, 1)
	} else {
		cfg = core.NewConfig(*seed)
		if *diverse {
			cfg.DiversifyKernels("c41")
		}
	}
	if *wanFTA {
		if cfg.NumSites() < 2 {
			return fmt.Errorf("-wan needs a multi-site fabric (use -sites 2+)")
		}
		cfg.WanSync.Enabled = true
		if cfg.WanSync.F == 0 {
			cfg.WanSync.F = cfg.F
		}
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	fmt.Print(sys.DescribeTopology())

	if *savePath != "" {
		if err := cfg.SaveConfigFile(*savePath); err != nil {
			return err
		}
		fmt.Printf("\nconfiguration written to %s\n", *savePath)
	}
	return nil
}
