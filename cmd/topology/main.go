// Command topology prints the wired testbed — the textual form of the
// paper's Fig. 2 — and optionally writes or reads a JSON configuration so
// that experiment setups can be version-controlled and shared.
//
// Usage:
//
//	topology [-seed N] [-config file.json] [-save file.json] [-diverse]
package main

import (
	"flag"
	"fmt"
	"os"

	"gptpfta/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topology:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	configPath := fs.String("config", "", "load the configuration from this JSON file")
	savePath := fs.String("save", "", "write the effective configuration to this JSON file")
	diverse := fs.Bool("diverse", false, "diversify grandmaster kernels")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg core.Config
	if *configPath != "" {
		loaded, err := core.LoadConfigFile(*configPath)
		if err != nil {
			return err
		}
		cfg = loaded
	} else {
		cfg = core.NewConfig(*seed)
		if *diverse {
			cfg.DiversifyKernels("c41")
		}
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	fmt.Print(sys.DescribeTopology())

	if *savePath != "" {
		if err := cfg.SaveConfigFile(*savePath); err != nil {
			return err
		}
		fmt.Printf("\nconfiguration written to %s\n", *savePath)
	}
	return nil
}
