// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a stable JSON document, so benchmark evidence can be committed
// and diffed (`make bench` writes BENCH_scheduler.json / BENCH_system.json
// with it). Standard columns become typed fields; custom b.ReportMetric
// columns land in a metrics map.
//
// Usage:
//
//	go test -bench X -benchmem . | benchjson -o BENCH_X.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line. GoMaxProcs is populated only when the
// document mixes lines with differing GOMAXPROCS (e.g. `go test -cpu=1,4`);
// in the common uniform case the value lives once in the Document header.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	GoMaxProcs  int                `json:"gomaxprocs,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted file: environment header plus results.
// GoMaxProcs is recovered from the benchmark-name suffix (the `-N` go test
// appends) and set here only when every line agrees; a mixed run (`go test
// -cpu=1,4`) records it per Result instead, so no line's environment is
// misattributed. NumCPU is sampled from the machine running benchjson,
// which `make bench` pipelines on the same host as the benchmarks.
// Together they make a "this baseline came from a single-core container"
// caveat visible in the committed data instead of a README footnote.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{NumCPU: runtime.NumCPU(), Results: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, procs, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if procs == 0 {
				// go test appends the -N name suffix only when GOMAXPROCS
				// differs from 1, so its absence means exactly 1.
				procs = 1
			}
			r.GoMaxProcs = procs
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Hoist a uniform GOMAXPROCS into the header; a mixed run (-cpu=1,4)
	// keeps the per-result values so nothing is misattributed.
	uniform := len(doc.Results) > 0
	for _, r := range doc.Results {
		if r.GoMaxProcs != doc.Results[0].GoMaxProcs {
			uniform = false
			break
		}
	}
	if uniform {
		doc.GoMaxProcs = doc.Results[0].GoMaxProcs
		for i := range doc.Results {
			doc.Results[i].GoMaxProcs = 0
		}
	}
	return doc, nil
}

// parseLine decodes one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..." row,
// returning the GOMAXPROCS the suffix encodes (0 when there is none).
func parseLine(line string) (Result, int, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, 0, fmt.Errorf("short benchmark line: %q", line)
	}
	name, procs := fields[0], 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix; it is environment, not identity —
		// but record it in the document header.
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, 0, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, 0, fmt.Errorf("bad value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, procs, nil
}
