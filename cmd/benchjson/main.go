// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a stable JSON document, so benchmark evidence can be committed
// and diffed (`make bench` writes BENCH_scheduler.json / BENCH_system.json
// with it). Standard columns become typed fields; custom b.ReportMetric
// columns land in a metrics map.
//
// Usage:
//
//	go test -bench X -benchmem . | benchjson -o BENCH_X.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted file: environment header plus results.
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{Results: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine decodes one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..." row.
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("short benchmark line: %q", line)
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix; it is environment, not identity.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}
