package main

import (
	"bufio"
	"strings"
	"testing"
)

// TestParseUniformProcs pins the common case: every line carries the same
// GOMAXPROCS suffix, which lands once in the document header and never on
// individual results.
func TestParseUniformProcs(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: example.com/p
cpu: Fake CPU @ 2.00GHz
BenchmarkFoo-4   100  12345 ns/op  64 B/op  2 allocs/op
BenchmarkBar-4   200  2345 ns/op  3.5 events/op
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoMaxProcs != 4 {
		t.Fatalf("header gomaxprocs = %d, want 4", doc.GoMaxProcs)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(doc.Results))
	}
	for _, r := range doc.Results {
		if r.GoMaxProcs != 0 {
			t.Fatalf("uniform run put gomaxprocs=%d on result %q; it belongs in the header", r.GoMaxProcs, r.Name)
		}
	}
	if doc.Results[0].Name != "BenchmarkFoo" || doc.Results[1].Name != "BenchmarkBar" {
		t.Fatalf("names = %q, %q", doc.Results[0].Name, doc.Results[1].Name)
	}
	if doc.Results[1].Metrics["events/op"] != 3.5 {
		t.Fatalf("custom metric lost: %v", doc.Results[1].Metrics)
	}
}

// TestParseMixedProcs pins the -cpu=1,4 case: differing suffixes must not
// be collapsed into one header value (that misattributes the environment
// for every other line); instead each result records its own.
func TestParseMixedProcs(t *testing.T) {
	in := `BenchmarkFoo     100  50000 ns/op
BenchmarkFoo-4   100  20000 ns/op
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoMaxProcs != 0 {
		t.Fatalf("mixed run set header gomaxprocs = %d, want omitted", doc.GoMaxProcs)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(doc.Results))
	}
	if got := doc.Results[0].GoMaxProcs; got != 1 {
		t.Fatalf("unsuffixed line gomaxprocs = %d, want 1", got)
	}
	if got := doc.Results[1].GoMaxProcs; got != 4 {
		t.Fatalf("-4 line gomaxprocs = %d, want 4", got)
	}
}

// TestParseEmpty pins the degenerate input: no benchmark lines, no header
// procs invented.
func TestParseEmpty(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader("goos: linux\n")))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoMaxProcs != 0 || len(doc.Results) != 0 {
		t.Fatalf("empty input produced gomaxprocs=%d, %d results", doc.GoMaxProcs, len(doc.Results))
	}
}
