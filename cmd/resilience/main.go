// Command resilience reproduces the paper's cyber-resilience experiment
// (Fig. 3a / Fig. 3b): a 1 h run during which an attacker exploits
// CVE-2018-18955 on the virtual grandmasters c41 (at 00:21:42) and c11
// (at 00:31:52). With identical kernels both exploits succeed and the
// measured precision violates the bound after the second compromise; with
// diversified kernels the second exploit fails and the FTA masks the
// single Byzantine grandmaster.
//
// Multiple seeds fan out across the runner's worker pool; per-seed output
// is printed in seed order regardless of completion order.
//
// Usage:
//
//	resilience [-seed N | -seeds 1,2,3] [-parallel N] [-shards N] [-duration 1h] [-diverse] [-series] [-chaos plan.json]
//
// -shards runs each seed's simulation on the sharded PDES kernel; the
// output is bit-identical at every shard count.
//
// With -attacks the command instead runs the adversarial campaign sweep
// (Byzantine grandmaster count × on-path Sync delay × kernel diversity)
// and prints each point's verdict against the analytic 2f+1 resilience
// bound; -fail-on-anomaly makes an anomaly verdict (predicted to survive
// but measured to fail) a non-zero exit, which is what the CI
// attack-matrix job gates on:
//
//	resilience -attacks [-attack-byz 0,1,2] [-attack-delays 0,24us] \
//	    [-attack-diversity identical,diverse] [-attack-start 3m] \
//	    [-attack-behavior constant] [-fail-on-anomaly]
//
// With -wansites the command runs the wide-area campaign instead: a sweep
// over (site count × simultaneously failed sites × WAN asymmetry) judging
// the site-level FTA tier's graceful degradation against the quorum bound
// min(f, ⌊(N−1)/2⌋). -fail-on-anomaly gates the same way, which is what the
// CI wan-smoke job runs:
//
//	resilience -wansites [-wan-sites 4,5] [-wan-failed 0,1,2,3] \
//	    [-wan-asyms 0,10us] [-wan-f 2] [-fail-on-anomaly]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/experiments"
	"gptpfta/internal/obs"
	"gptpfta/internal/prof"
	"gptpfta/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("resilience", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	seedList := fs.String("seeds", "", "comma-separated seed list; runs one experiment per seed")
	parallel := fs.Int("parallel", 0, "worker count for multi-seed runs (0 = GOMAXPROCS, 1 = sequential)")
	shards := fs.Int("shards", 1, "PDES shard count (1 = legacy single scheduler; results are bit-identical)")
	duration := fs.Duration("duration", time.Hour, "experiment duration (attacks scale with it)")
	diverse := fs.Bool("diverse", false, "diversify grandmaster kernels (Fig. 3b); default identical (Fig. 3a)")
	series := fs.Bool("series", true, "print the ASCII precision series (single-seed runs only)")
	chaosPath := fs.String("chaos", "", "network chaos scenario plan (JSON) to run alongside the exploits")
	holdover := fs.Duration("holdover-window", 0, "arm the ptp4l holdover watchdog with this quorum-starvation window (0 = off)")
	metricsPath := fs.String("metrics", "", "write a JSONL metrics snapshot (one line per metric, tagged per seed) to this file")
	attacks := fs.Bool("attacks", false, "run the adversarial campaign sweep instead of the Fig. 3 experiment")
	attackByz := fs.String("attack-byz", "", "comma-separated Byzantine grandmaster counts for -attacks (default 0,1,2)")
	attackDelays := fs.String("attack-delays", "", "comma-separated Sync delay magnitudes for -attacks, e.g. 0,24us (default 0,24us)")
	attackDiversity := fs.String("attack-diversity", "", "comma-separated kernel axes for -attacks: identical,diverse (default both)")
	attackStart := fs.Duration("attack-start", 0, "attack onset for -attacks (0 = experiment default)")
	attackBehavior := fs.String("attack-behavior", "", "falsification behavior for -attacks: constant, ramp or wander (default constant)")
	failOnAnomaly := fs.Bool("fail-on-anomaly", false, "exit non-zero when -attacks or -wansites yields an anomaly verdict")
	wansites := fs.Bool("wansites", false, "run the wide-area multi-site campaign instead of the Fig. 3 experiment")
	wanSiteCounts := fs.String("wan-sites", "", "comma-separated fabric sizes for -wansites (default 4,5)")
	wanFailed := fs.String("wan-failed", "", "comma-separated simultaneous site-failure counts for -wansites (default 0,1,2,3)")
	wanAsyms := fs.String("wan-asyms", "", "comma-separated WAN asymmetry magnitudes for -wansites, e.g. 0,10us (default 0,10us)")
	wanF := fs.Int("wan-f", 0, "site-level Byzantine budget f for -wansites (0 = campaign default 2)")
	profCfg := &prof.Config{}
	fs.StringVar(&profCfg.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&profCfg.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&profCfg.Trace, "trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*profCfg)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "resilience:", perr)
		}
	}()

	if *wansites {
		dur := *duration
		if !flagWasSet(fs, "duration") {
			dur = 0 // campaign default (60 s per point), not the Fig. 3 hour
		}
		cfg := experiments.WanSitesConfig{
			Seed:     *seed,
			Duration: dur,
			F:        *wanF,
			Parallel: *parallel,
			Shards:   *shards,
		}
		var perr error
		if cfg.SiteCounts, perr = parseIntList(*wanSiteCounts); perr != nil {
			return fmt.Errorf("bad -wan-sites: %w", perr)
		}
		if cfg.FailedSites, perr = parseIntList(*wanFailed); perr != nil {
			return fmt.Errorf("bad -wan-failed: %w", perr)
		}
		if cfg.Asyms, perr = parseDurationList(*wanAsyms); perr != nil {
			return fmt.Errorf("bad -wan-asyms: %w", perr)
		}
		return runWanSites(cfg, *metricsPath, *failOnAnomaly)
	}

	if *attacks {
		dur := *duration
		if !flagWasSet(fs, "duration") {
			dur = 0 // campaign default (8 min), not the Fig. 3 hour
		}
		cfg := experiments.AttacksConfig{
			Seed:           *seed,
			Duration:       dur,
			AttackStart:    *attackStart,
			Behavior:       *attackBehavior,
			HoldoverWindow: *holdover,
			Parallel:       *parallel,
			Shards:         *shards,
		}
		var perr error
		if cfg.ByzantineCounts, perr = parseIntList(*attackByz); perr != nil {
			return fmt.Errorf("bad -attack-byz: %w", perr)
		}
		if cfg.Delays, perr = parseDurationList(*attackDelays); perr != nil {
			return fmt.Errorf("bad -attack-delays: %w", perr)
		}
		cfg.Diversity = parseStringList(*attackDiversity)
		return runAttacks(cfg, *metricsPath, *failOnAnomaly)
	}

	var plan *chaos.Plan
	if *chaosPath != "" {
		plan, err = chaos.Load(*chaosPath)
		if err != nil {
			return err
		}
		fmt.Printf("chaos plan %q: %d actions\n", plan.Name, len(plan.Actions))
	}

	seeds := []int64{*seed}
	if *seedList != "" {
		seeds = seeds[:0]
		for _, part := range strings.Split(*seedList, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return fmt.Errorf("bad -seeds entry %q: %w", part, err)
			}
			seeds = append(seeds, s)
		}
	}

	exp, err := experiments.Lookup("resilience")
	if err != nil {
		return err
	}
	showSeries := *series && len(seeds) == 1

	runs := make([]runner.Run, len(seeds))
	for i, s := range seeds {
		s := s
		runs[i] = runner.Run{Name: fmt.Sprintf("seed/%d", s), Do: func(ctx context.Context) (any, error) {
			res, err := exp.Run(ctx, experiments.CyberResilienceConfig{
				Seed:           s,
				Duration:       *duration,
				DiverseKernels: *diverse,
				ChaosPlan:      plan,
				HoldoverWindow: *holdover,
				Shards:         *shards,
			})
			if err != nil {
				return nil, err
			}
			typed := res.(*experiments.CyberResilienceResult)
			return block{
				run:  fmt.Sprintf("seed/%d", s),
				text: render(s, *duration, showSeries, typed),
				res:  typed,
			}, nil
		}}
	}
	campaign := obs.NewRegistry()
	outcomes := runner.New(*parallel).WithMetrics(campaign).Execute(context.Background(), runs)
	blocks, err := runner.Values[block](outcomes)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		fmt.Print(b.text)
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, blocks, campaign); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsPath)
	}
	return nil
}

// runAttacks runs the adversarial campaign sweep through the experiment
// registry, prints the verdict table, and optionally gates on anomalies —
// the command-line face of the CI attack-matrix job.
func runAttacks(cfg experiments.AttacksConfig, metricsPath string, failOnAnomaly bool) error {
	campaign := obs.NewRegistry()
	cfg.Metrics = campaign
	exp, err := experiments.Lookup("attacks")
	if err != nil {
		return err
	}
	res, err := exp.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	typed := res.(*experiments.AttacksResult)
	fmt.Printf("=== adversarial campaign — seed %d, duration %v, attack at %v ===\n",
		typed.Config.Seed, typed.Config.Duration, typed.Config.AttackStart)
	fmt.Print(experiments.RenderAttackTable(typed.Rows()))
	fmt.Println(typed.Summary())
	if metricsPath != "" {
		blocks := []block{{run: "attacks", res: typed}}
		if err := writeMetrics(metricsPath, blocks, campaign); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsPath)
	}
	if n := typed.Anomalies(); failOnAnomaly && n > 0 {
		return fmt.Errorf("%d anomaly verdict(s): measured failure inside the analytic bound", n)
	}
	return nil
}

// runWanSites runs the wide-area campaign through the experiment registry,
// prints the verdict table, and optionally gates on anomalies — the
// command-line face of the CI wan-smoke job.
func runWanSites(cfg experiments.WanSitesConfig, metricsPath string, failOnAnomaly bool) error {
	campaign := obs.NewRegistry()
	cfg.Metrics = campaign
	exp, err := experiments.Lookup("wansites")
	if err != nil {
		return err
	}
	res, err := exp.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	typed := res.(*experiments.WanSitesResult)
	fmt.Printf("=== wide-area campaign — seed %d, duration %v, fault at %v for %v ===\n",
		typed.Config.Seed, typed.Config.Duration, typed.Config.FaultStart, typed.Config.FaultDuration)
	fmt.Print(experiments.RenderAttackTable(typed.Rows()))
	fmt.Println(typed.Summary())
	if metricsPath != "" {
		blocks := []block{{run: "wansites", res: typed}}
		if err := writeMetrics(metricsPath, blocks, campaign); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsPath)
	}
	if n := typed.Anomalies(); failOnAnomaly && n > 0 {
		return fmt.Errorf("%d anomaly verdict(s): measured degradation outside the site quorum bound", n)
	}
	return nil
}

// flagWasSet reports whether the user passed the named flag explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseDurationList(s string) ([]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "0" {
			out = append(out, 0)
			continue
		}
		v, err := time.ParseDuration(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseStringList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

// block is one seed's rendered output plus its result, kept so -metrics can
// snapshot each run after the deterministic ordering is restored.
type block struct {
	run  string
	text string
	res  experiments.ObsCarrier
}

// writeMetrics emits one JSONL metrics file: per-seed snapshots tagged
// "seed/N" plus the campaign runner metrics tagged "runner".
func writeMetrics(path string, blocks []block, campaign *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		if err := obs.WriteJSONL(f, b.run, b.res.ObsMetrics()); err != nil {
			f.Close()
			return err
		}
	}
	if err := obs.WriteJSONL(f, "runner", campaign.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func render(seed int64, duration time.Duration, series bool, res *experiments.CyberResilienceResult) string {
	var b strings.Builder
	figure := "Fig. 3a (identical kernels)"
	if res.Config.DiverseKernels {
		figure = "Fig. 3b (diverse kernels)"
	}
	fmt.Fprintf(&b, "=== %s — seed %d, duration %v ===\n", figure, seed, duration)
	fmt.Fprintf(&b, "bound parameters: E = %v, Gamma = %v, Pi = %v, gamma = %v\n",
		res.ReadingError, res.DriftOffset, res.Bound, res.Gamma)
	fmt.Fprintf(&b, "attack schedule: first %v, second %v\n", res.FirstAttackAt, res.SecondAttackAt)
	for _, r := range res.ExploitResults {
		fmt.Fprintf(&b, "   %s\n", r)
	}
	fmt.Fprintln(&b, res.Summary())
	fmt.Fprintf(&b, "samples: %d before second attack (%d violations), %d after (%d violations, max %.0f ns)\n",
		res.SamplesBeforeSecond, res.ViolationsBeforeSecond,
		res.SamplesAfterSecond, res.ViolationsAfterSecond, res.MaxAfterSecondNS)
	if series {
		b.WriteString("\n")
		b.WriteString(experiments.RenderSeries(res.Windows, res.Bound, res.Gamma, 18))
	}
	return b.String()
}
