// Command resilience reproduces the paper's cyber-resilience experiment
// (Fig. 3a / Fig. 3b): a 1 h run during which an attacker exploits
// CVE-2018-18955 on the virtual grandmasters c41 (at 00:21:42) and c11
// (at 00:31:52). With identical kernels both exploits succeed and the
// measured precision violates the bound after the second compromise; with
// diversified kernels the second exploit fails and the FTA masks the
// single Byzantine grandmaster.
//
// Multiple seeds fan out across the runner's worker pool; per-seed output
// is printed in seed order regardless of completion order.
//
// Usage:
//
//	resilience [-seed N | -seeds 1,2,3] [-parallel N] [-shards N] [-duration 1h] [-diverse] [-series] [-chaos plan.json]
//
// -shards runs each seed's simulation on the sharded PDES kernel; the
// output is bit-identical at every shard count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/experiments"
	"gptpfta/internal/obs"
	"gptpfta/internal/prof"
	"gptpfta/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("resilience", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	seedList := fs.String("seeds", "", "comma-separated seed list; runs one experiment per seed")
	parallel := fs.Int("parallel", 0, "worker count for multi-seed runs (0 = GOMAXPROCS, 1 = sequential)")
	shards := fs.Int("shards", 1, "PDES shard count (1 = legacy single scheduler; results are bit-identical)")
	duration := fs.Duration("duration", time.Hour, "experiment duration (attacks scale with it)")
	diverse := fs.Bool("diverse", false, "diversify grandmaster kernels (Fig. 3b); default identical (Fig. 3a)")
	series := fs.Bool("series", true, "print the ASCII precision series (single-seed runs only)")
	chaosPath := fs.String("chaos", "", "network chaos scenario plan (JSON) to run alongside the exploits")
	holdover := fs.Duration("holdover-window", 0, "arm the ptp4l holdover watchdog with this quorum-starvation window (0 = off)")
	metricsPath := fs.String("metrics", "", "write a JSONL metrics snapshot (one line per metric, tagged per seed) to this file")
	profCfg := &prof.Config{}
	fs.StringVar(&profCfg.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&profCfg.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&profCfg.Trace, "trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*profCfg)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "resilience:", perr)
		}
	}()

	var plan *chaos.Plan
	if *chaosPath != "" {
		plan, err = chaos.Load(*chaosPath)
		if err != nil {
			return err
		}
		fmt.Printf("chaos plan %q: %d actions\n", plan.Name, len(plan.Actions))
	}

	seeds := []int64{*seed}
	if *seedList != "" {
		seeds = seeds[:0]
		for _, part := range strings.Split(*seedList, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return fmt.Errorf("bad -seeds entry %q: %w", part, err)
			}
			seeds = append(seeds, s)
		}
	}

	exp, err := experiments.Lookup("resilience")
	if err != nil {
		return err
	}
	showSeries := *series && len(seeds) == 1

	runs := make([]runner.Run, len(seeds))
	for i, s := range seeds {
		s := s
		runs[i] = runner.Run{Name: fmt.Sprintf("seed/%d", s), Do: func(ctx context.Context) (any, error) {
			res, err := exp.Run(ctx, experiments.CyberResilienceConfig{
				Seed:           s,
				Duration:       *duration,
				DiverseKernels: *diverse,
				ChaosPlan:      plan,
				HoldoverWindow: *holdover,
				Shards:         *shards,
			})
			if err != nil {
				return nil, err
			}
			typed := res.(*experiments.CyberResilienceResult)
			return block{
				run:  fmt.Sprintf("seed/%d", s),
				text: render(s, *duration, showSeries, typed),
				res:  typed,
			}, nil
		}}
	}
	campaign := obs.NewRegistry()
	outcomes := runner.New(*parallel).WithMetrics(campaign).Execute(context.Background(), runs)
	blocks, err := runner.Values[block](outcomes)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		fmt.Print(b.text)
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, blocks, campaign); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsPath)
	}
	return nil
}

// block is one seed's rendered output plus its result, kept so -metrics can
// snapshot each run after the deterministic ordering is restored.
type block struct {
	run  string
	text string
	res  experiments.ObsCarrier
}

// writeMetrics emits one JSONL metrics file: per-seed snapshots tagged
// "seed/N" plus the campaign runner metrics tagged "runner".
func writeMetrics(path string, blocks []block, campaign *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		if err := obs.WriteJSONL(f, b.run, b.res.ObsMetrics()); err != nil {
			f.Close()
			return err
		}
	}
	if err := obs.WriteJSONL(f, "runner", campaign.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func render(seed int64, duration time.Duration, series bool, res *experiments.CyberResilienceResult) string {
	var b strings.Builder
	figure := "Fig. 3a (identical kernels)"
	if res.Config.DiverseKernels {
		figure = "Fig. 3b (diverse kernels)"
	}
	fmt.Fprintf(&b, "=== %s — seed %d, duration %v ===\n", figure, seed, duration)
	fmt.Fprintf(&b, "bound parameters: E = %v, Gamma = %v, Pi = %v, gamma = %v\n",
		res.ReadingError, res.DriftOffset, res.Bound, res.Gamma)
	fmt.Fprintf(&b, "attack schedule: first %v, second %v\n", res.FirstAttackAt, res.SecondAttackAt)
	for _, r := range res.ExploitResults {
		fmt.Fprintf(&b, "   %s\n", r)
	}
	fmt.Fprintln(&b, res.Summary())
	fmt.Fprintf(&b, "samples: %d before second attack (%d violations), %d after (%d violations, max %.0f ns)\n",
		res.SamplesBeforeSecond, res.ViolationsBeforeSecond,
		res.SamplesAfterSecond, res.ViolationsAfterSecond, res.MaxAfterSecondNS)
	if series {
		b.WriteString("\n")
		b.WriteString(experiments.RenderSeries(res.Windows, res.Bound, res.Gamma, 18))
	}
	return b.String()
}
