// Command resilience reproduces the paper's cyber-resilience experiment
// (Fig. 3a / Fig. 3b): a 1 h run during which an attacker exploits
// CVE-2018-18955 on the virtual grandmasters c41 (at 00:21:42) and c11
// (at 00:31:52). With identical kernels both exploits succeed and the
// measured precision violates the bound after the second compromise; with
// diversified kernels the second exploit fails and the FTA masks the
// single Byzantine grandmaster.
//
// Usage:
//
//	resilience [-seed N] [-duration 1h] [-diverse] [-series]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gptpfta/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("resilience", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	duration := fs.Duration("duration", time.Hour, "experiment duration (attacks scale with it)")
	diverse := fs.Bool("diverse", false, "diversify grandmaster kernels (Fig. 3b); default identical (Fig. 3a)")
	series := fs.Bool("series", true, "print the ASCII precision series")
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := experiments.CyberResilience(experiments.CyberResilienceConfig{
		Seed:           *seed,
		Duration:       *duration,
		DiverseKernels: *diverse,
	})
	if err != nil {
		return err
	}

	figure := "Fig. 3a (identical kernels)"
	if *diverse {
		figure = "Fig. 3b (diverse kernels)"
	}
	fmt.Printf("=== %s — seed %d, duration %v ===\n", figure, *seed, *duration)
	fmt.Printf("bound parameters: E = %v, Gamma = %v, Pi = %v, gamma = %v\n",
		res.ReadingError, res.DriftOffset, res.Bound, res.Gamma)
	fmt.Printf("attack schedule: first %v, second %v\n", res.FirstAttackAt, res.SecondAttackAt)
	for _, r := range res.ExploitResults {
		fmt.Println("  ", r)
	}
	fmt.Println(res.Summary())
	fmt.Printf("samples: %d before second attack (%d violations), %d after (%d violations, max %.0f ns)\n",
		res.SamplesBeforeSecond, res.ViolationsBeforeSecond,
		res.SamplesAfterSecond, res.ViolationsAfterSecond, res.MaxAfterSecondNS)
	if *series {
		fmt.Println()
		fmt.Print(experiments.RenderSeries(res.Windows, res.Bound, res.Gamma, 18))
	}
	return nil
}
