// Command ptpdump is the simulator's protocol analyzer: it captures the
// gPTP traffic a clock-synchronization VM receives, in genuine IEEE
// 1588/802.1AS wire format, and decodes capture files.
//
// Capture 30 s of dom-aggregated traffic at c22 and dump it:
//
//	ptpdump -capture trace.bin -vm c22 -duration 30s
//	ptpdump -in trace.bin | head
//	ptpdump -in trace.bin -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gptpfta/internal/core"
	"gptpfta/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ptpdump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ptpdump", flag.ContinueOnError)
	capturePath := fs.String("capture", "", "run the testbed and capture to this file")
	vmName := fs.String("vm", "c22", "VM whose receive path is captured")
	duration := fs.Duration("duration", 30*time.Second, "capture duration (simulated)")
	seed := fs.Int64("seed", 1, "master random seed")
	inPath := fs.String("in", "", "decode this capture file")
	summary := fs.Bool("summary", false, "print only the per-type tally")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *capturePath != "":
		return capture(*capturePath, *vmName, *duration, *seed)
	case *inPath != "":
		return dump(*inPath, *summary)
	default:
		return fmt.Errorf("one of -capture or -in is required")
	}
}

func capture(path, vmName string, d time.Duration, seed int64) error {
	sys, err := core.NewSystem(core.NewConfig(seed))
	if err != nil {
		return err
	}
	vm, ok := sys.VM(vmName)
	if !ok {
		return fmt.Errorf("no VM %q", vmName)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(f)
	vm.Stack.SetTap(rec.Tap(sys.Scheduler(), vmName))
	if err := sys.Start(); err != nil {
		f.Close()
		return err
	}
	if err := sys.RunFor(d); err != nil {
		f.Close()
		return err
	}
	if rec.Err() != nil {
		f.Close()
		return rec.Err()
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("captured %d frames at %s over %v into %s\n", rec.Records(), vmName, d, path)
	return nil
}

func dump(path string, summaryOnly bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.ReadAll(f)
	if err != nil {
		return err
	}
	if summaryOnly {
		fmt.Println(trace.Summary(records))
		return nil
	}
	return trace.Dump(os.Stdout, records)
}
