package main

import (
	"path/filepath"
	"testing"
)

func TestRunPtpdumpCaptureAndDecode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := run([]string{"-capture", path, "-vm", "c32", "-duration", "5s"}); err != nil {
		t.Fatalf("capture: %v", err)
	}
	if err := run([]string{"-in", path, "-summary"}); err != nil {
		t.Fatalf("summary: %v", err)
	}
}

func TestRunPtpdumpErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no mode accepted")
	}
	if err := run([]string{"-capture", "/tmp/x.bin", "-vm", "nope"}); err == nil {
		t.Fatal("unknown VM accepted")
	}
	if err := run([]string{"-in", "/no/such/trace.bin"}); err == nil {
		t.Fatal("missing trace accepted")
	}
}
