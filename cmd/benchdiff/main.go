// Command benchdiff compares two benchmark evidence files and exits
// non-zero when the new one regressed beyond a threshold — the gate the CI
// bench-smoke job runs against the committed BENCH_*.json baselines.
//
// Default mode reads two benchjson documents (cmd/benchjson output) and
// compares ns/op, B/op and allocs/op per benchmark. With -metrics the
// inputs are obs JSONL snapshots (the -metrics output of the experiment
// CLIs) and numeric drift per series is flagged in either direction.
//
// Usage:
//
//	benchdiff [-threshold 1.25] [-per Name:ns_per_op=2.0,...] [-warn-only] old.json new.json
//	benchdiff -metrics [-threshold 1.25] old.jsonl new.jsonl
//
// -threshold is the allowed new/old ratio. -per overrides it per series:
// keys are "BenchmarkName:metric" (most specific), "BenchmarkName", or
// "metric". -warn-only reports but always exits zero, for informational CI
// jobs. Exit status: 0 clean, 1 regression found, 2 usage or parse error.
//
// An input file that exists on only one side is treated as an added or
// removed benchmark suite: its series are listed informationally and the
// comparison exits 0, so introducing a new BENCH_*.json (or retiring one)
// never breaks the CI gate before its baseline is committed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"gptpfta/internal/obs"
)

// Result mirrors cmd/benchjson's per-benchmark JSON shape.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document mirrors cmd/benchjson's file shape.
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// errRegression distinguishes "comparison ran, regressions found" (exit 1)
// from operational errors (exit 2).
var errRegression = errors.New("benchdiff: regression detected")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errRegression):
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}

type options struct {
	threshold float64
	perSeries map[string]float64
	warnOnly  bool
	metrics   bool
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 1.25, "allowed new/old ratio before a series counts as regressed")
	per := fs.String("per", "", "per-series overrides: comma-separated key=ratio (key = \"Name:metric\", \"Name\" or \"metric\")")
	warnOnly := fs.Bool("warn-only", false, "report regressions but exit zero (informational CI jobs)")
	metrics := fs.Bool("metrics", false, "inputs are obs JSONL metrics snapshots instead of benchjson documents")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly 2 input files (old new), got %d", fs.NArg())
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold must be positive, got %v", *threshold)
	}
	opt := options{threshold: *threshold, warnOnly: *warnOnly, metrics: *metrics}
	var err error
	if opt.perSeries, err = parsePer(*per); err != nil {
		return err
	}

	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	if done, err := reportOneSided(oldPath, newPath, opt, w); done || err != nil {
		return err
	}
	var regressions int
	if opt.metrics {
		regressions, err = diffMetrics(oldPath, newPath, opt, w)
	} else {
		regressions, err = diffDocs(oldPath, newPath, opt, w)
	}
	if err != nil {
		return err
	}
	if regressions == 0 {
		fmt.Fprintln(w, "benchdiff: no regressions")
		return nil
	}
	if opt.warnOnly {
		fmt.Fprintf(w, "benchdiff: %d regression(s) (warn-only, not failing)\n", regressions)
		return nil
	}
	return fmt.Errorf("%w: %d series beyond threshold", errRegression, regressions)
}

// reportOneSided handles an evidence file that exists on only one side of
// the diff — a benchmark suite that was just added (no committed baseline
// yet) or removed. That is information, not a failure: the series are
// listed as added/removed and the comparison succeeds with no regressions.
// Both files missing is still an operational error (fall through to the
// normal read path, which reports it with exit 2).
func reportOneSided(oldPath, newPath string, opt options, w io.Writer) (bool, error) {
	_, oldErr := os.Stat(oldPath)
	_, newErr := os.Stat(newPath)
	oldMissing := errors.Is(oldErr, os.ErrNotExist)
	newMissing := errors.Is(newErr, os.ErrNotExist)
	if oldMissing == newMissing {
		return false, nil
	}
	verb, path := "added", newPath
	if newMissing {
		verb, path = "removed", oldPath
	}
	names, err := seriesNames(path, opt.metrics)
	if err != nil {
		return false, err
	}
	for _, name := range names {
		fmt.Fprintf(w, "  %-7s %s: only in %s\n", verb, name, path)
	}
	fmt.Fprintf(w, "benchdiff: %s suite (%d series %s, no baseline comparison)\n", verb, len(names), verb)
	return true, nil
}

// seriesNames lists the series in one evidence file, for the one-sided
// added/removed report.
func seriesNames(path string, metrics bool) ([]string, error) {
	if metrics {
		vals, err := readMetricValues(path)
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, len(vals))
		for k := range vals {
			names = append(names, k)
		}
		sort.Strings(names)
		return names, nil
	}
	doc, err := readDoc(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(doc.Results))
	for _, r := range doc.Results {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names, nil
}

// parsePer decodes "key=ratio,key=ratio" overrides.
func parsePer(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -per entry %q (want key=ratio)", part)
		}
		r, err := strconv.ParseFloat(v, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad -per ratio in %q", part)
		}
		out[k] = r
	}
	return out, nil
}

// thresholdFor resolves the most specific override for a series.
func (o options) thresholdFor(name, metric string) float64 {
	for _, key := range []string{name + ":" + metric, name, metric} {
		if t, ok := o.perSeries[key]; ok {
			return t
		}
	}
	return o.threshold
}

// check prints one comparison row and reports whether it regressed. A zero
// old value cannot form a ratio; it is reported informationally only.
func check(w io.Writer, name, metric string, oldV, newV, threshold float64, bothWays bool) bool {
	if oldV == 0 {
		if newV != 0 {
			fmt.Fprintf(w, "  new    %s %s: baseline 0, now %g\n", name, metric, newV)
		}
		return false
	}
	ratio := newV / oldV
	bad := ratio > threshold || (bothWays && ratio < 1/threshold)
	if bad {
		fmt.Fprintf(w, "  REGRESSION %s %s: %g -> %g (%.2fx, threshold %.2fx)\n",
			name, metric, oldV, newV, ratio, threshold)
	}
	return bad
}

func readDoc(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// diffDocs compares two benchjson documents per benchmark name.
func diffDocs(oldPath, newPath string, opt options, w io.Writer) (int, error) {
	oldDoc, err := readDoc(oldPath)
	if err != nil {
		return 0, err
	}
	newDoc, err := readDoc(newPath)
	if err != nil {
		return 0, err
	}
	baseline := make(map[string]Result, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		baseline[r.Name] = r
	}
	regressions := 0
	for _, nr := range newDoc.Results {
		or, ok := baseline[nr.Name]
		if !ok {
			fmt.Fprintf(w, "  new    %s: no baseline\n", nr.Name)
			continue
		}
		delete(baseline, nr.Name)
		if check(w, nr.Name, "ns/op", or.NsPerOp, nr.NsPerOp, opt.thresholdFor(nr.Name, "ns_per_op"), false) {
			regressions++
		}
		if or.BytesPerOp != nil && nr.BytesPerOp != nil &&
			check(w, nr.Name, "B/op", *or.BytesPerOp, *nr.BytesPerOp, opt.thresholdFor(nr.Name, "bytes_per_op"), false) {
			regressions++
		}
		if or.AllocsPerOp != nil && nr.AllocsPerOp != nil &&
			check(w, nr.Name, "allocs/op", *or.AllocsPerOp, *nr.AllocsPerOp, opt.thresholdFor(nr.Name, "allocs_per_op"), false) {
			regressions++
		}
	}
	// Benchmarks present in the baseline but missing from the new run are
	// suspicious (renamed or dropped coverage) but not regressions.
	missing := make([]string, 0, len(baseline))
	for name := range baseline {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "  missing %s: in baseline but not in new run\n", name)
	}
	return regressions, nil
}

// diffMetrics compares two obs JSONL snapshots per (run, series) key. Drift
// is flagged in both directions: for sync-quality metrics a large drop can
// be as telling as a large rise.
func diffMetrics(oldPath, newPath string, opt options, w io.Writer) (int, error) {
	oldVals, err := readMetricValues(oldPath)
	if err != nil {
		return 0, err
	}
	newVals, err := readMetricValues(newPath)
	if err != nil {
		return 0, err
	}
	keys := make([]string, 0, len(newVals))
	for k := range newVals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Series present in only one snapshot are informational, never a
	// regression or an error: a chaos-only run adds counters (and a plain
	// run lacks them) without breaking the diff.
	removed := make([]string, 0)
	for k := range oldVals {
		if _, ok := newVals[k]; !ok {
			removed = append(removed, k)
		}
	}
	sort.Strings(removed)
	for _, k := range removed {
		fmt.Fprintf(w, "  removed %s: only in baseline\n", k)
	}
	regressions := 0
	for _, k := range keys {
		oldV, ok := oldVals[k]
		if !ok {
			fmt.Fprintf(w, "  added  %s: no baseline\n", k)
			continue
		}
		// Per-series overrides key on the metric name without the run tag.
		name := k
		if i := strings.IndexByte(k, ' '); i > 0 {
			name = k[i+1:]
		}
		if check(w, k, "value", oldV, newVals[k], opt.thresholdFor(name, "value"), true) {
			regressions++
		}
	}
	return regressions, nil
}

// readMetricValues flattens a JSONL snapshot to "run key" -> scalar:
// counters and gauges by value, histograms by mean.
func readMetricValues(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(recs))
	for _, r := range recs {
		v := r.Value
		if r.Histogram != nil {
			v = r.Histogram.Mean()
		}
		out[r.Run+" "+r.Key()] = v
	}
	return out, nil
}
