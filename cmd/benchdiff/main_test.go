package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gptpfta/internal/obs"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineDoc = `{
  "goos": "linux", "goarch": "amd64",
  "results": [
    {"name": "BenchmarkScheduler", "iterations": 1000, "ns_per_op": 100, "bytes_per_op": 16, "allocs_per_op": 1},
    {"name": "BenchmarkSystem", "iterations": 10, "ns_per_op": 50000}
  ]
}`

func TestIdenticalInputsExitClean(t *testing.T) {
	oldPath := writeFile(t, "old.json", baselineDoc)
	newPath := writeFile(t, "new.json", baselineDoc)
	var out bytes.Buffer
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatalf("identical inputs must pass, got: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("missing clean verdict:\n%s", out.String())
	}
}

func TestNsPerOpRegressionFails(t *testing.T) {
	oldPath := writeFile(t, "old.json", baselineDoc)
	regressed := strings.Replace(baselineDoc, `"ns_per_op": 100`, `"ns_per_op": 200`, 1)
	newPath := writeFile(t, "new.json", regressed)
	var out bytes.Buffer
	err := run([]string{oldPath, newPath}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("2x ns/op must regress, got: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkScheduler ns/op") {
		t.Fatalf("missing regression row:\n%s", out.String())
	}
}

func TestAllocRegressionFails(t *testing.T) {
	oldPath := writeFile(t, "old.json", baselineDoc)
	regressed := strings.Replace(baselineDoc, `"allocs_per_op": 1`, `"allocs_per_op": 4`, 1)
	newPath := writeFile(t, "new.json", regressed)
	if err := run([]string{oldPath, newPath}, new(bytes.Buffer)); !errors.Is(err, errRegression) {
		t.Fatalf("4x allocs/op must regress, got: %v", err)
	}
}

func TestPerSeriesOverride(t *testing.T) {
	oldPath := writeFile(t, "old.json", baselineDoc)
	regressed := strings.Replace(baselineDoc, `"ns_per_op": 100`, `"ns_per_op": 200`, 1)
	newPath := writeFile(t, "new.json", regressed)
	var out bytes.Buffer
	if err := run([]string{"-per", "BenchmarkScheduler:ns_per_op=3.0", oldPath, newPath}, &out); err != nil {
		t.Fatalf("override to 3x must allow 2x, got: %v\n%s", err, out.String())
	}
}

func TestWarnOnlyAlwaysExitsClean(t *testing.T) {
	oldPath := writeFile(t, "old.json", baselineDoc)
	regressed := strings.Replace(baselineDoc, `"ns_per_op": 100`, `"ns_per_op": 1000`, 1)
	newPath := writeFile(t, "new.json", regressed)
	var out bytes.Buffer
	if err := run([]string{"-warn-only", oldPath, newPath}, &out); err != nil {
		t.Fatalf("warn-only must not fail, got: %v", err)
	}
	if !strings.Contains(out.String(), "warn-only") {
		t.Fatalf("missing warn-only note:\n%s", out.String())
	}
}

func TestMissingBenchmarkIsInformational(t *testing.T) {
	oldPath := writeFile(t, "old.json", baselineDoc)
	trimmed := `{"results": [{"name": "BenchmarkScheduler", "iterations": 1000, "ns_per_op": 100}]}`
	newPath := writeFile(t, "new.json", trimmed)
	var out bytes.Buffer
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatalf("missing benchmark must not fail, got: %v", err)
	}
	if !strings.Contains(out.String(), "missing BenchmarkSystem") {
		t.Fatalf("missing-benchmark note absent:\n%s", out.String())
	}
}

func snapshotFile(t *testing.T, name string, fill func(*obs.Registry)) string {
	t.Helper()
	reg := obs.NewRegistry()
	fill(reg)
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, "run1", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return writeFile(t, name, buf.String())
}

func TestMetricsModeDriftBothDirections(t *testing.T) {
	oldPath := snapshotFile(t, "old.jsonl", func(r *obs.Registry) {
		r.Counter("frames", obs.L("node", "sw1")).Add(100)
	})
	doubled := snapshotFile(t, "new.jsonl", func(r *obs.Registry) {
		r.Counter("frames", obs.L("node", "sw1")).Add(200)
	})
	halved := snapshotFile(t, "half.jsonl", func(r *obs.Registry) {
		r.Counter("frames", obs.L("node", "sw1")).Add(50)
	})

	if err := run([]string{"-metrics", oldPath, oldPath}, new(bytes.Buffer)); err != nil {
		t.Fatalf("identical snapshots must pass, got: %v", err)
	}
	if err := run([]string{"-metrics", oldPath, doubled}, new(bytes.Buffer)); !errors.Is(err, errRegression) {
		t.Fatalf("2x counter must flag drift, got: %v", err)
	}
	if err := run([]string{"-metrics", oldPath, halved}, new(bytes.Buffer)); !errors.Is(err, errRegression) {
		t.Fatalf("0.5x counter must flag drift (both directions), got: %v", err)
	}
	if err := run([]string{"-metrics", "-threshold", "4", oldPath, doubled}, new(bytes.Buffer)); err != nil {
		t.Fatalf("generous threshold must pass, got: %v", err)
	}
}

// TestMetricsModeOneSidedSeries pins the chaos-composition contract: series
// present in only one snapshot (e.g. chaos_actions counters from a -chaos
// run diffed against a plain baseline) are reported as added/removed and
// never fail the comparison.
func TestMetricsModeOneSidedSeries(t *testing.T) {
	plain := snapshotFile(t, "plain.jsonl", func(r *obs.Registry) {
		r.Counter("frames", obs.L("node", "sw1")).Add(100)
	})
	withChaos := snapshotFile(t, "chaos.jsonl", func(r *obs.Registry) {
		r.Counter("frames", obs.L("node", "sw1")).Add(100)
		r.Counter("chaos_actions", obs.L("op", "partition")).Add(3)
	})

	var out bytes.Buffer
	if err := run([]string{"-metrics", plain, withChaos}, &out); err != nil {
		t.Fatalf("added series must be informational, got: %v", err)
	}
	if !strings.Contains(out.String(), "added  run1 chaos_actions") {
		t.Fatalf("added series not reported:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-metrics", withChaos, plain}, &out); err != nil {
		t.Fatalf("removed series must be informational, got: %v", err)
	}
	if !strings.Contains(out.String(), "removed run1 chaos_actions") {
		t.Fatalf("removed series not reported:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run([]string{"only-one.json"}, new(bytes.Buffer)); err == nil {
		t.Fatal("one input must be a usage error")
	}
	bad := writeFile(t, "bad.json", "{not json")
	good := writeFile(t, "good.json", baselineDoc)
	if err := run([]string{bad, good}, new(bytes.Buffer)); err == nil || errors.Is(err, errRegression) {
		t.Fatalf("parse failure must be an operational error, got: %v", err)
	}
}

func TestOneSidedFileIsInformational(t *testing.T) {
	present := writeFile(t, "present.json", baselineDoc)
	absent := filepath.Join(t.TempDir(), "absent.json")

	var out bytes.Buffer
	if err := run([]string{absent, present}, &out); err != nil {
		t.Fatalf("new suite without baseline must pass, got: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "added   BenchmarkScheduler") ||
		!strings.Contains(out.String(), "added suite (2 series added") {
		t.Fatalf("missing added report:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{present, absent}, &out); err != nil {
		t.Fatalf("removed suite must pass, got: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "removed BenchmarkSystem") ||
		!strings.Contains(out.String(), "removed suite (2 series removed") {
		t.Fatalf("missing removed report:\n%s", out.String())
	}

	// Both sides missing stays an operational error (exit 2 path).
	out.Reset()
	if err := run([]string{absent, filepath.Join(t.TempDir(), "gone.json")}, &out); err == nil ||
		errors.Is(err, errRegression) {
		t.Fatalf("both files missing must be an operational error, got: %v", err)
	}
}

func TestOneSidedMetricsFileIsInformational(t *testing.T) {
	path := writeFile(t, "metrics.jsonl", "")
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(f, "run", []obs.Metric{{Name: "sim_events_processed", Value: 10}}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run([]string{"-metrics", filepath.Join(t.TempDir(), "absent.jsonl"), path}, &out); err != nil {
		t.Fatalf("one-sided metrics snapshot must pass, got: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "added   run sim_events_processed") {
		t.Fatalf("missing added series report:\n%s", out.String())
	}
}
