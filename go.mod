module gptpfta

go 1.22
