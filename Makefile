# Verification targets. `make verify` is the tier-1 gate; `make race`
# adds vet and the race detector (the runner's worker pool is the main
# concurrency surface, and the frame pool in netsim is shared between the
# pool's workers).

GO ?= go

.PHONY: build test vet race bench bench-all profile verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect the whole module; the runner package is the critical one.
race: vet
	$(GO) test -race ./...

# Committed performance evidence: the event-kernel microbenchmarks and the
# full-system simulation rate, as diffable JSON (ns/op, allocs/op, custom
# metrics per entry).
bench:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run ^$$ -bench 'BenchmarkSchedulerThroughput|BenchmarkSchedulerCancelHeavy|BenchmarkNetsimFrameBurst' \
		-benchmem . | /tmp/benchjson -o BENCH_scheduler.json
	$(GO) test -run ^$$ -bench 'BenchmarkSystemSimulationRate' -benchmem . | /tmp/benchjson -o BENCH_system.json

# One quick pass over every benchmark (figure regeneration smoke test).
bench-all:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# CPU + heap profile of the full report run; inspect with `go tool pprof`.
profile:
	$(GO) run ./cmd/report -scale 0.02 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof (go tool pprof cpu.pprof)"

verify: build vet test
	$(GO) test -race ./internal/runner/... ./internal/sim/... ./internal/netsim/...
