# Verification targets. `make verify` is the tier-1 gate; `make race`
# adds the race detector over the whole module (the runner's worker pool
# is the main concurrency surface; the frame pool in netsim and the obs
# registry handles are shared between the pool's workers).
#
# `make ci` mirrors .github/workflows/ci.yml so the pipeline can be
# reproduced locally in one command.

GO ?= go

.PHONY: build test vet fmt-check race bench bench-all bench-smoke shard-scaling chaos-smoke serve-smoke attack-smoke wan-smoke fuzz-smoke determinism profile verify ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails (listing the offenders) if any Go file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Race-detect the whole module; the runner package is the critical one.
race: vet
	$(GO) test -race ./...

# Determinism check: the golden digests (the simulation must produce
# bit-identical results run-to-run and across instrumentation changes),
# the fork-equivalence suite (a warm-started run forked from a
# convergence-prefix snapshot must be bit-identical to the cold run its
# fallback executes, across several seeds), and the PDES shard-equivalence
# suites (every shard count must reproduce the single-scheduler run
# bit-for-bit, at both the core and the experiments layer).
determinism:
	$(GO) test ./internal/experiments/ -run 'TestGoldenDigest|TestForkEquivalence|TestWarmFallback|TestShardEquivalence' -count=1 -v
	$(GO) test ./internal/core/ -run 'TestShardEquivalence' -count=1 -v

# Committed performance evidence: the event-kernel microbenchmarks and the
# full-system simulation rate, as diffable JSON (ns/op, allocs/op, custom
# metrics per entry). Piped through `go run` so no shared binary is built
# into /tmp (parallel CI jobs would race on it).
bench:
	$(GO) test -run ^$$ -bench 'BenchmarkSchedulerThroughput|BenchmarkSchedulerCancelHeavy|BenchmarkNetsimFrameBurst' \
		-benchmem . | $(GO) run ./cmd/benchjson -o BENCH_scheduler.json
	$(GO) test -run ^$$ -bench 'BenchmarkSystemSimulationRate' -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_system.json
	$(GO) test -run ^$$ -bench 'BenchmarkSweepCold|BenchmarkSweepWarmStart' -benchtime 3x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_sweep.json
	$(GO) test -run ^$$ -bench 'BenchmarkPDESFabric' -benchtime 3x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_pdes.json
	$(GO) test -run ^$$ -bench 'BenchmarkWANFabric' -benchtime 3x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_wan.json

# One quick pass over every benchmark (figure regeneration smoke test).
bench-all:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# Informational regression gate: one -benchtime 1x pass diffed against the
# committed baselines with cmd/benchdiff. The threshold is deliberately
# generous (25x) and -warn-only keeps it non-blocking: a 1x pass on shared
# CI hardware is noisy evidence, useful only for spotting order-of-magnitude
# cliffs. `make bench` regenerates the committed baselines.
bench-smoke:
	@mkdir -p .bench-smoke
	$(GO) test -run ^$$ -bench 'BenchmarkSchedulerThroughput|BenchmarkSchedulerCancelHeavy|BenchmarkNetsimFrameBurst' \
		-benchtime 1x -benchmem . | $(GO) run ./cmd/benchjson -o .bench-smoke/scheduler.json
	$(GO) test -run ^$$ -bench 'BenchmarkSystemSimulationRate' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -o .bench-smoke/system.json
	$(GO) test -run ^$$ -bench 'BenchmarkSweepCold|BenchmarkSweepWarmStart' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -o .bench-smoke/sweep.json
	$(GO) test -run ^$$ -bench 'BenchmarkPDESFabric' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -o .bench-smoke/pdes.json
	$(GO) test -run ^$$ -bench 'BenchmarkWANFabric' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -o .bench-smoke/wan.json
	$(GO) run ./cmd/benchdiff -warn-only -threshold 25 BENCH_scheduler.json .bench-smoke/scheduler.json
	$(GO) run ./cmd/benchdiff -warn-only -threshold 25 BENCH_system.json .bench-smoke/system.json
	$(GO) run ./cmd/benchdiff -warn-only -threshold 25 BENCH_sweep.json .bench-smoke/sweep.json
	$(GO) run ./cmd/benchdiff -warn-only -threshold 25 BENCH_pdes.json .bench-smoke/pdes.json
	$(GO) run ./cmd/benchdiff -warn-only -threshold 25 BENCH_wan.json .bench-smoke/wan.json

# Shard-scaling gate (blocking, unlike bench-smoke): run BenchmarkPDESFabric
# at shards=1 and shards=4 in one process on one machine and compare the two
# points with cmd/shardgate. events/op must match exactly (shard count must
# not change what is simulated) and the sharded point must not regress more
# than 10% in ns/op against shards=1 — machine speed cancels out of the
# within-run ratio, so this stays meaningful on shared runners where the
# absolute benchdiff comparison cannot.
shard-scaling:
	@mkdir -p .bench-smoke
	$(GO) test -run ^$$ -bench 'BenchmarkPDESFabric/shards=(1|4)$$' -benchtime 3x -benchmem . \
		| $(GO) run ./cmd/benchjson -o .bench-smoke/shard-scaling.json
	$(GO) run ./cmd/shardgate -max-regress 0.10 .bench-smoke/shard-scaling.json

# CPU + heap profile of the full report run; inspect with `go tool pprof`.
profile:
	$(GO) run ./cmd/report -scale 0.02 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof (go tool pprof cpu.pprof)"

verify: build fmt-check vet test
	$(GO) test -race ./internal/runner/... ./internal/sim/... ./internal/netsim/... \
		./internal/obs/... ./internal/chaos/... ./internal/ptp4l/... ./internal/core/...

# Chaos smoke: a 10-minute-sim-time fault-injection campaign driven by the
# committed example scenario plan, with the holdover watchdog armed. Fails
# on a non-zero exit or an empty metrics snapshot.
chaos-smoke:
	@mkdir -p .chaos-smoke
	$(GO) run ./cmd/faultinjection -duration 10m -chaos examples/partition.json \
		-holdover-window 2s -metrics .chaos-smoke/metrics.jsonl > .chaos-smoke/log.txt
	@test -s .chaos-smoke/metrics.jsonl || { echo "chaos-smoke: empty metrics snapshot"; exit 1; }
	@echo "chaos-smoke: ok ($$(wc -l < .chaos-smoke/metrics.jsonl) metric lines)"

# Attack smoke: the adversarial campaign matrix (Byzantine grandmaster
# count × on-path Sync delay) against the analytic 2f+1 resilience bound.
# -fail-on-anomaly makes any point that was predicted to survive but
# measured to fail a non-zero exit; an empty metrics snapshot also fails.
attack-smoke:
	@mkdir -p .attack-smoke
	$(GO) run ./cmd/resilience -attacks -duration 6m -attack-start 2m \
		-attack-byz 0,1,2 -attack-delays 0,24us -attack-diversity identical \
		-fail-on-anomaly -metrics .attack-smoke/metrics.jsonl > .attack-smoke/log.txt
	@test -s .attack-smoke/metrics.jsonl || { echo "attack-smoke: empty metrics snapshot"; exit 1; }
	@echo "attack-smoke: ok ($$(wc -l < .attack-smoke/metrics.jsonl) metric lines)"

# Wide-area smoke: the wansites campaign (site failures × WAN asymmetry)
# against the site-level min(f, ⌊(N−1)/2⌋) quorum with cross-site holdover.
# -fail-on-anomaly makes any verdict of measured degradation outside the
# quorum bound a non-zero exit; an empty metrics snapshot also fails.
wan-smoke:
	@mkdir -p .wan-smoke
	$(GO) run ./cmd/resilience -wansites -wan-sites 4,5 -wan-failed 0,1,2,3 \
		-wan-asyms 0,10us -fail-on-anomaly -metrics .wan-smoke/metrics.jsonl > .wan-smoke/log.txt
	@test -s .wan-smoke/metrics.jsonl || { echo "wan-smoke: empty metrics snapshot"; exit 1; }
	@echo "wan-smoke: ok ($$(wc -l < .wan-smoke/metrics.jsonl) metric lines)"

# Fuzz smoke: a short informational pass over every committed fuzz target
# (Go runs one -fuzz pattern per invocation), plus the derived-seed fault
# hypothesis property test. CI runs this as a non-blocking job.
fuzz-smoke:
	$(GO) test ./internal/netsim/ -run ^$$ -fuzz FuzzLinkMinDelay -fuzztime 10s
	$(GO) test ./internal/sim/ -run ^$$ -fuzz FuzzSchedulerSnapshotRoundTrip -fuzztime 10s
	$(GO) test ./internal/sim/ -run ^$$ -fuzz FuzzSchedulerVsReferenceModel -fuzztime 10s
	$(GO) test ./internal/gptp/ -run ^$$ -fuzz FuzzWireDecode -fuzztime 10s
	$(GO) test ./internal/gptp/ -run ^$$ -fuzz FuzzWireSyncRoundTrip -fuzztime 10s
	$(GO) test ./internal/faultinject/ -run TestFaultHypothesisAcrossDerivedSeeds -count=1

# Serve smoke: boot cmd/served on an ephemeral port, drive a small
# netchaos job through POST /v1/jobs, poll it to completion and assert a
# schema-1 result envelope plus a non-empty metrics JSONL stream.
serve-smoke:
	sh scripts/serve_smoke.sh .serve-smoke

# Everything the CI workflow runs, in one local command.
ci: verify determinism bench-smoke shard-scaling chaos-smoke attack-smoke wan-smoke serve-smoke
