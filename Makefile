# Verification targets. `make verify` is the tier-1 gate; `make race`
# adds vet and the race detector (the runner's worker pool is the main
# concurrency surface).

GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect the whole module; the runner package is the critical one.
race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

verify: build vet test
	$(GO) test -race ./internal/runner/...
