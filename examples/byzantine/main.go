// Byzantine grandmaster demo: one compromised grandmaster distributes
// preciseOriginTimestamps shifted by −24 µs (the paper's attack). The
// fault-tolerant average masks it — the FTSHMEM validity flags expose the
// lying domain while the measured precision stays bounded. A second
// compromised grandmaster exceeds f = 1 and breaks synchronization.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"os"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/core"
	"gptpfta/internal/measure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "byzantine:", err)
		os.Exit(1)
	}
}

func precisionOver(sys *core.System, d time.Duration) (measure.Stats, error) {
	from := float64(sys.Now()) / 1e9
	if err := sys.RunFor(d); err != nil {
		return measure.Stats{}, err
	}
	var window []measure.Sample
	for _, s := range sys.Collector().Samples() {
		if s.AtSec >= from {
			window = append(window, s)
		}
	}
	return measure.ComputeStats(window), nil
}

func run() error {
	sys, err := core.NewSystem(core.NewConfig(7))
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	if err := sys.RunFor(90 * time.Second); err != nil {
		return err
	}
	bound, _ := sys.PrecisionBound()
	fmt.Printf("converged; precision bound Pi = %v\n\n", bound)

	healthy, err := precisionOver(sys, 2*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("healthy:                    %s\n", healthy)

	// Compromise dom4's grandmaster: within f = 1, the FTA masks it.
	c41, _ := sys.VM("c41")
	c41.Stack.Compromise(attack.MaliciousOriginOffsetNS)
	fmt.Println("\n>>> c41 (dom4's GM) now distributes origin timestamps shifted by -24 µs")
	masked, err := precisionOver(sys, 2*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("one Byzantine GM (masked):  %s\n", masked)

	// The validity flags on a benign node point at the liar.
	c22, _ := sys.VM("c22")
	flags := c22.Stack.FTSHMEM().Flags()
	for i, ok := range flags {
		verdict := "within threshold"
		if !ok {
			verdict = "FLAGGED: disagrees with the remaining grandmasters"
		}
		fmt.Printf("  c22 FTSHMEM validity[dom%d] = %-5v %s\n", i+1, ok, verdict)
	}

	// A second Byzantine grandmaster exceeds f and the guarantee is gone.
	c11, _ := sys.VM("c11")
	c11.Stack.Compromise(attack.MaliciousOriginOffsetNS)
	fmt.Println("\n>>> c11 (dom1's GM) compromised as well — two liars exceed f=1")
	broken, err := precisionOver(sys, 4*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("two Byzantine GMs:          %s\n", broken)
	if broken.MaxNS > float64(bound) {
		fmt.Printf("\nbound %v violated (max %.0f ns) — exactly the paper's Fig. 3a failure mode\n",
			bound, broken.MaxNS)
	}
	return nil
}
