// Quickstart: build the paper's four-node testbed, let it synchronize, and
// watch the measured clock-synchronization precision settle under the
// analytic bound Π = u(N,f)·(E+Γ).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"gptpfta/internal/core"
	"gptpfta/internal/measure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The default configuration reproduces the paper's testbed: four edge
	// devices in a switch mesh, four gPTP domains with spatially separated
	// grandmasters, two clock-synchronization VMs per node, S = 125 ms.
	cfg := core.NewConfig(42)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}

	fmt.Println("running the start-up protocol (everyone tracks dom1's GM)...")
	for sys.Now() < 60*1e9 {
		if err := sys.RunFor(10 * time.Second); err != nil {
			return err
		}
		mode := "converging"
		if sys.AllInFTOperation() {
			mode = "fault-tolerant operation"
		}
		tp, _ := sys.TruePrecision()
		fmt.Printf("  t=%-6v %-26s true precision %8.0f ns\n", sys.Now(), mode, tp)
	}

	fmt.Println("\nsteady state (5 minutes)...")
	vm, _ := sys.VM("c22")
	vm.Stack.Statistics().Reset() // start a fresh summary window
	if err := sys.RunFor(5 * time.Minute); err != nil {
		return err
	}

	var steady []measure.Sample
	for _, s := range sys.Collector().Samples() {
		if s.AtSec > 60 {
			steady = append(steady, s)
		}
	}
	stats := measure.ComputeStats(steady)
	bound, _ := sys.PrecisionBound()
	e, _ := sys.ReadingError()
	fmt.Printf("\nmeasured precision: %s\n", stats)
	fmt.Printf("reading error E = %v, drift offset Gamma = %v\n", e, sys.DriftOffset())
	fmt.Printf("precision bound Pi = 2(E+Gamma) = %v, measurement error gamma = %v\n",
		bound, sys.Collector().Gamma())
	if v := measure.ViolationCount(steady, float64(bound)); v == 0 {
		fmt.Println("every sample within the bound — the architecture holds its guarantee")
	} else {
		fmt.Printf("%d samples beyond the bound\n", v)
	}

	// The extended ptp4l keeps LinuxPTP-style summary statistics: per-domain
	// grandmaster offsets, the FTA outputs fed to the shared PI servo, and
	// the applied frequency corrections.
	fmt.Printf("\nc22 ptp4l statistics over the steady-state window (ns):\n%s",
		vm.Stack.Statistics().Summary())
	return nil
}
