// Failover demo: the fault-tolerant dependent clock in action. The active
// clock-synchronization VM of a node is killed fail-silent; the hypervisor
// monitor detects the stale STSHMEM parameters within its 125 ms period and
// injects the takeover interrupt into the redundant VM, which keeps
// CLOCK_SYNCTIME alive for the co-located VMs.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"time"

	"gptpfta/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := core.NewSystem(core.NewConfig(11))
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	if err := sys.RunFor(90 * time.Second); err != nil {
		return err
	}

	node := sys.Node(2) // dev3
	show := func(label string) {
		v, ok := node.SyncTimeNow()
		if !ok {
			fmt.Printf("%-34s CLOCK_SYNCTIME unavailable\n", label)
			return
		}
		// Deviation from the average CLOCK_SYNCTIME of the other nodes —
		// what a distributed application co-located on dev3 would care
		// about.
		var sum float64
		var n int
		for i, other := range sys.Nodes() {
			if i == 2 {
				continue
			}
			if ov, ok := other.SyncTimeNow(); ok {
				sum += ov
				n++
			}
		}
		dev := v - sum/float64(n)
		active := node.STSHMEM().Active()
		fmt.Printf("%-34s dev3 vs others %8.0f ns   active slot %d (VM c3%d)   healthy VMs %d\n",
			label, dev, active, active+1, node.HealthyVMs())
	}

	show("steady state:")

	fmt.Println("\n>>> killing c31 — dev3's grandmaster and active clock-sync VM")
	if err := node.FailVM(0); err != nil {
		return err
	}
	if err := sys.RunFor(100 * time.Millisecond); err != nil {
		return err
	}
	show("100 ms after the failure:")
	if err := sys.RunFor(400 * time.Millisecond); err != nil {
		return err
	}
	show("500 ms (monitor has fired):")
	if err := sys.RunFor(30 * time.Second); err != nil {
		return err
	}
	show("30 s later (running on c32):")

	fmt.Println("\n>>> rebooting c31; it rejoins via the start-up protocol")
	if err := node.RebootVM(0); err != nil {
		return err
	}
	if err := sys.RunFor(2 * time.Minute); err != nil {
		return err
	}
	show("2 min after reboot:")
	vm, _ := sys.VM("c31")
	fmt.Printf("\nc31 stack mode: %v (its domain's Sync emission resumed)\n", vm.Stack.Mode())

	fmt.Println("\nevent log:")
	for _, e := range sys.EventLog().Events() {
		switch e.Kind {
		case "vm_failed", "vm_rebooted", "takeover", "mode_change":
			fmt.Println("  ", e)
		}
	}
	return nil
}
