// Time-triggered application demo — the workload the paper's introduction
// motivates. A distributed control task runs on every node, released at
// global 10 ms boundaries of CLOCK_SYNCTIME; the cross-node release jitter
// IS the application-visible clock synchronization quality. A fail-silent
// grandmaster barely registers (FTA + dependent-clock failover); two
// Byzantine grandmasters destroy the time-triggered schedule.
//
//	go run ./examples/timetriggered
package main

import (
	"fmt"
	"os"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/core"
	"gptpfta/internal/ttapp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "timetriggered:", err)
		os.Exit(1)
	}
}

func measureJitter(sys *core.System, d time.Duration, label string) (ttapp.JitterStats, error) {
	var tasks []*ttapp.Task
	for i, node := range sys.Nodes() {
		task, err := ttapp.NewTask(core.NodeName(i), sys.Scheduler(), node, ttapp.TaskConfig{
			Name:   label,
			Period: 10 * time.Millisecond,
		})
		if err != nil {
			return ttapp.JitterStats{}, err
		}
		if err := task.Start(); err != nil {
			return ttapp.JitterStats{}, err
		}
		tasks = append(tasks, task)
	}
	if err := sys.RunFor(d); err != nil {
		return ttapp.JitterStats{}, err
	}
	for _, t := range tasks {
		t.Stop()
	}
	return ttapp.SummarizeJitter(ttapp.CrossNodeJitter(tasks)), nil
}

func run() error {
	sys, err := core.NewSystem(core.NewConfig(33))
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	fmt.Println("synchronizing the four-node testbed...")
	if err := sys.RunFor(2 * time.Minute); err != nil {
		return err
	}

	healthy, err := measureJitter(sys, time.Minute, "ctrl")
	if err != nil {
		return err
	}
	fmt.Printf("healthy:                 %s\n", healthy)

	// A fail-silent grandmaster: the FTA and the dependent clock absorb it.
	if err := sys.Node(2).FailVM(0); err != nil {
		return err
	}
	failSilent, err := measureJitter(sys, time.Minute, "ctrl-failsilent")
	if err != nil {
		return err
	}
	fmt.Printf("one fail-silent GM:      %s\n", failSilent)
	if err := sys.Node(2).RebootVM(0); err != nil {
		return err
	}
	if err := sys.RunFor(time.Minute); err != nil {
		return err
	}

	// Two Byzantine grandmasters: beyond f = 1, the schedule collapses.
	for _, name := range []string{"c11", "c41"} {
		vm, _ := sys.VM(name)
		vm.Stack.Compromise(attack.MaliciousOriginOffsetNS)
	}
	attacked, err := measureJitter(sys, 3*time.Minute, "ctrl-attacked")
	if err != nil {
		return err
	}
	fmt.Printf("two Byzantine GMs:       %s\n", attacked)

	fmt.Println("\nthe time-triggered schedule holds exactly as long as the clock architecture's")
	fmt.Println("fault hypothesis does — the paper's motivation, observed at the application.")
	return nil
}
