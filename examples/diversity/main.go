// OS-diversity demo: the same attacker, two software-stack policies. With
// identical kernels on all virtual grandmasters, one exploit compromises
// more than f of them and Byzantine fault tolerance collapses; with
// diversified kernels the blast radius stays within f. This is the paper's
// §II-B argument (after Garcia et al.'s shared-vulnerability study) made
// executable.
//
//	go run ./examples/diversity
package main

import (
	"fmt"
	"os"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/core"
	"gptpfta/internal/measure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "diversity:", err)
		os.Exit(1)
	}
}

func scenario(diverse bool) error {
	label := "identical kernels (v4.19.1 everywhere)"
	cfg := core.NewConfig(23)
	if diverse {
		label = "diversified kernels (only c41 exploitable)"
		cfg.DiversifyKernels("c41")
	}
	fmt.Printf("--- %s ---\n", label)

	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	if err := sys.RunFor(2 * time.Minute); err != nil {
		return err
	}

	atk := attack.NewAttacker(attack.DefaultVulnDB(), attack.CVE201818955, "c11", "c41")
	for _, target := range []string{"c41", "c11"} {
		vm, _ := sys.VM(target)
		fmt.Println("  ", atk.Exploit(vm, attack.MaliciousOriginOffsetNS))
	}

	if err := sys.RunFor(6 * time.Minute); err != nil {
		return err
	}
	var after []measure.Sample
	for _, s := range sys.Collector().Samples() {
		if s.AtSec > 180 {
			after = append(after, s)
		}
	}
	stats := measure.ComputeStats(after)
	bound, _ := sys.PrecisionBound()
	fmt.Printf("  compromised GMs: %v\n", atk.Compromised())
	fmt.Printf("  measured precision after the attacks: %s\n", stats)
	if stats.MaxNS > float64(bound) {
		fmt.Printf("  bound %v VIOLATED — synchronization lost\n\n", bound)
	} else {
		fmt.Printf("  bound %v held — the FTA masked the compromise\n\n", bound)
	}
	return nil
}

func run() error {
	db := attack.DefaultVulnDB()
	fmt.Printf("shared vulnerabilities (CVE database): v4.19.1 vs v4.19.1 = %d, v4.19.1 vs v5.10.46 = %d\n\n",
		db.SharedVulnerabilities("v4.19.1", "v4.19.1"),
		db.SharedVulnerabilities("v4.19.1", "v5.10.46"))
	if err := scenario(false); err != nil {
		return err
	}
	return scenario(true)
}
