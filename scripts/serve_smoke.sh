#!/bin/sh
# Serve smoke test: boot cmd/served on an ephemeral port, submit a small
# netchaos job over HTTP, poll it to completion and assert the job went
# done with a non-empty metrics JSONL stream. Mirrors the CI serve-smoke
# job; run via `make serve-smoke`.
set -eu

WORKDIR=${1:-.serve-smoke}
mkdir -p "$WORKDIR"
LOG="$WORKDIR/served.log"
: > "$LOG"

go build -o "$WORKDIR/served" ./cmd/served

"$WORKDIR/served" -addr 127.0.0.1:0 -workers 1 > "$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the bound address to appear in the log.
ADDR=
for _ in $(seq 100); do
    ADDR=$(sed -n 's/^listening on //p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve-smoke: server never announced its address" >&2
    cat "$LOG" >&2
    exit 1
fi
BASE="http://$ADDR"

# The same strict wire config the CLIs use: a 4.5-minute netchaos campaign,
# one loss burst and one partition point (durations are nanosecond ints).
JOB='{"experiment":"netchaos","config":{"seed":5,"duration":270000000000,"burst_bad_loss":[0.5],"partition_durations":[10000000000],"parallel":1}}'

SUBMIT=$(curl -sS -X POST -H 'Content-Type: application/json' -d "$JOB" "$BASE/v1/jobs")
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
if [ -z "$ID" ]; then
    echo "serve-smoke: submission failed: $SUBMIT" >&2
    exit 1
fi
echo "serve-smoke: submitted $ID to $BASE"

STATE=
for _ in $(seq 600); do
    STATUS=$(curl -sS "$BASE/v1/jobs/$ID")
    STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|cancelled)
            echo "serve-smoke: job finished $STATE: $STATUS" >&2
            exit 1 ;;
    esac
    sleep 0.2
done
if [ "$STATE" != "done" ]; then
    echo "serve-smoke: job never finished (last state: ${STATE:-unknown})" >&2
    exit 1
fi

curl -sS "$BASE/v1/jobs/$ID/result" > "$WORKDIR/result.json"
grep -q '"schema": *1' "$WORKDIR/result.json" || {
    echo "serve-smoke: result is not a schema-1 envelope" >&2
    cat "$WORKDIR/result.json" >&2
    exit 1
}

curl -sS "$BASE/v1/jobs/$ID/metrics" > "$WORKDIR/metrics.jsonl"
if ! [ -s "$WORKDIR/metrics.jsonl" ]; then
    echo "serve-smoke: empty metrics stream" >&2
    exit 1
fi

echo "serve-smoke: ok ($(wc -l < "$WORKDIR/metrics.jsonl") metric lines)"
